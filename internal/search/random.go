package search

import (
	"autopn/internal/space"
	"autopn/internal/stats"
)

// Random explores configurations uniformly at random without replacement,
// stopping when the last Window explorations improved the best KPI by less
// than RelDelta (the paper uses 5 and 10% to mirror AutoPN's EI stopping
// threshold).
type Random struct {
	tracker
	order []space.Config
	pos   int
	stop  *noImprovementStop
	done  bool
}

// NewRandom returns a random-search optimizer over sp.
func NewRandom(sp *space.Space, rng *stats.RNG, window int, relDelta float64) *Random {
	cfgs := sp.Configs()
	order := make([]space.Config, len(cfgs))
	copy(order, cfgs)
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	return &Random{order: order, stop: newNoImprovementStop(window, relDelta)}
}

// Name implements Optimizer.
func (r *Random) Name() string { return "random" }

// Next implements Optimizer.
func (r *Random) Next() (space.Config, bool) {
	if r.done || r.pos >= len(r.order) {
		return space.Config{}, true
	}
	return r.order[r.pos], false
}

// Observe implements Optimizer.
func (r *Random) Observe(cfg space.Config, kpi float64) {
	r.note(cfg, kpi)
	r.pos++
	if r.stop.observe(kpi) {
		r.done = true
	}
}

// Grid sweeps the space in deterministic order, first varying c (nested
// parallelism) and then t (top-level parallelism), with the same
// no-improvement stopping rule as Random.
type Grid struct {
	tracker
	order []space.Config
	pos   int
	stop  *noImprovementStop
	done  bool
}

// NewGrid returns a grid-search optimizer over sp.
func NewGrid(sp *space.Space, window int, relDelta float64) *Grid {
	// The space's canonical order is exactly "sweep c within each t".
	return &Grid{order: sp.Configs(), stop: newNoImprovementStop(window, relDelta)}
}

// Name implements Optimizer.
func (g *Grid) Name() string { return "grid" }

// Next implements Optimizer.
func (g *Grid) Next() (space.Config, bool) {
	if g.done || g.pos >= len(g.order) {
		return space.Config{}, true
	}
	return g.order[g.pos], false
}

// Observe implements Optimizer.
func (g *Grid) Observe(cfg space.Config, kpi float64) {
	g.note(cfg, kpi)
	g.pos++
	if g.stop.observe(kpi) {
		g.done = true
	}
}
