package search

import (
	"autopn/internal/space"
	"autopn/internal/stats"
)

// Genetic is the paper's GA baseline: candidate configurations are encoded
// as chromosomes (here, the (t, c) integer pair), evolved by elitism,
// tournament selection, single-point crossover and per-gene mutation.
// Offspring that violate the t*c <= n constraint are repaired by shrinking
// the larger gene. Evolution stops when the best fitness has not improved
// across StallGenerations consecutive generations.
//
// The meta-parameters are the robust settings identified by the offline
// meta-tuning mirroring the paper's protocol (population 20, elitism 2,
// crossover 0.9, mutation 0.15, stall window 4).
type Genetic struct {
	tracker
	sp  *space.Space
	rng *stats.RNG

	PopulationSize   int
	Elites           int
	CrossoverRate    float64
	MutationRate     float64
	StallGenerations int

	population []space.Config
	fitness    []float64
	pendingIdx int // next population member to evaluate
	known      map[space.Config]float64

	generation int
	stalled    int
	lastBest   float64
	done       bool
}

// NewGenetic returns a GA optimizer with calibrated defaults.
func NewGenetic(sp *space.Space, rng *stats.RNG) *Genetic {
	g := &Genetic{
		sp:               sp,
		rng:              rng,
		PopulationSize:   20,
		Elites:           2,
		CrossoverRate:    0.9,
		MutationRate:     0.15,
		StallGenerations: 4,
		known:            make(map[space.Config]float64),
	}
	g.population = make([]space.Config, g.PopulationSize)
	g.fitness = make([]float64, g.PopulationSize)
	for i := range g.population {
		g.population[i] = sp.At(rng.Intn(sp.Size()))
	}
	return g
}

// Name implements Optimizer.
func (g *Genetic) Name() string { return "genetic" }

// Next implements Optimizer.
func (g *Genetic) Next() (space.Config, bool) {
	for {
		if g.done {
			return space.Config{}, true
		}
		for g.pendingIdx < len(g.population) {
			cfg := g.population[g.pendingIdx]
			if kpi, ok := g.known[cfg]; ok {
				// Duplicate individual: reuse the cached fitness for free.
				g.fitness[g.pendingIdx] = kpi
				g.pendingIdx++
				continue
			}
			return cfg, false
		}
		g.evolve()
	}
}

// Observe implements Optimizer.
func (g *Genetic) Observe(cfg space.Config, kpi float64) {
	g.note(cfg, kpi)
	g.known[cfg] = kpi
	if g.pendingIdx < len(g.population) && g.population[g.pendingIdx] == cfg {
		g.fitness[g.pendingIdx] = kpi
		g.pendingIdx++
	}
}

// evolve produces the next generation and updates the stall counter.
func (g *Genetic) evolve() {
	// Rank current generation.
	order := make([]int, len(g.population))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ { // insertion sort by descending fitness
		for j := i; j > 0 && g.fitness[order[j]] > g.fitness[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	genBest := g.fitness[order[0]]
	if g.generation > 0 && genBest <= g.lastBest {
		g.stalled++
	} else {
		g.stalled = 0
	}
	if genBest > g.lastBest || g.generation == 0 {
		g.lastBest = genBest
	}
	g.generation++
	if g.stalled >= g.StallGenerations {
		g.done = true
		return
	}

	next := make([]space.Config, 0, g.PopulationSize)
	for i := 0; i < g.Elites && i < len(order); i++ {
		next = append(next, g.population[order[i]])
	}
	for len(next) < g.PopulationSize {
		a := g.tournament()
		b := g.tournament()
		child := a
		if g.rng.Float64() < g.CrossoverRate {
			// Single-point crossover over the two genes: swap the c gene.
			child = space.Config{T: a.T, C: b.C}
		}
		if g.rng.Float64() < g.MutationRate {
			child.T += g.mutationStep()
		}
		if g.rng.Float64() < g.MutationRate {
			child.C += g.mutationStep()
		}
		next = append(next, g.repair(child))
	}
	g.population = next
	g.fitness = make([]float64, len(next))
	g.pendingIdx = 0
}

// tournament selects the fitter of two uniformly drawn individuals.
func (g *Genetic) tournament() space.Config {
	i := g.rng.Intn(len(g.population))
	j := g.rng.Intn(len(g.population))
	if g.fitness[i] >= g.fitness[j] {
		return g.population[i]
	}
	return g.population[j]
}

// mutationStep draws a small signed displacement (±1 or ±2).
func (g *Genetic) mutationStep() int {
	step := 1 + g.rng.Intn(2)
	if g.rng.Float64() < 0.5 {
		return -step
	}
	return step
}

// repair clamps a chromosome back into the admissible space: coordinates
// are clamped to [1, n] and, while oversubscribed, the larger gene shrinks.
func (g *Genetic) repair(cfg space.Config) space.Config {
	n := g.sp.Cores()
	if cfg.T < 1 {
		cfg.T = 1
	}
	if cfg.C < 1 {
		cfg.C = 1
	}
	if cfg.T > n {
		cfg.T = n
	}
	if cfg.C > n {
		cfg.C = n
	}
	for cfg.T*cfg.C > n {
		if cfg.T >= cfg.C {
			cfg.T--
		} else {
			cfg.C--
		}
	}
	return cfg
}
