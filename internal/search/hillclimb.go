package search

import (
	"autopn/internal/space"
	"autopn/internal/stats"
)

// HillClimb is plain steepest-ascent hill climbing over the 4-neighborhood
// of the (t, c) grid, started from a random point (the paper's HC
// baseline). Each round it measures every not-yet-measured neighbor of the
// current point, moves to the best neighbor if it improves, and stops at a
// local maximum. Known KPIs are reused rather than re-measured.
type HillClimb struct {
	tracker
	sp      *space.Space
	current space.Config
	known   map[space.Config]float64

	pending []space.Config // neighbors to measure this round
	started bool
	done    bool
}

// NewHillClimb returns a hill climber starting from a uniformly random
// configuration.
func NewHillClimb(sp *space.Space, rng *stats.RNG) *HillClimb {
	start := sp.At(rng.Intn(sp.Size()))
	return NewHillClimbFrom(sp, start)
}

// NewHillClimbFrom returns a hill climber starting from start. AutoPN uses
// this for its refinement phase, seeding the climb with the best
// configuration found by the SMBO phase.
func NewHillClimbFrom(sp *space.Space, start space.Config) *HillClimb {
	return &HillClimb{sp: sp, current: start, known: make(map[space.Config]float64)}
}

// Seed pre-loads already-measured KPIs (e.g. from a preceding SMBO phase)
// so the climb does not re-measure them.
func (h *HillClimb) Seed(cfg space.Config, kpi float64) {
	h.known[cfg] = kpi
	h.note(cfg, kpi)
}

// Name implements Optimizer.
func (h *HillClimb) Name() string { return "hill-climbing" }

// Next implements Optimizer.
func (h *HillClimb) Next() (space.Config, bool) {
	if h.done {
		return space.Config{}, true
	}
	if !h.started {
		h.started = true
		if _, ok := h.known[h.current]; !ok {
			return h.current, false
		}
	}
	for {
		if len(h.pending) > 0 {
			cfg := h.pending[0]
			if _, ok := h.known[cfg]; ok {
				h.pending = h.pending[1:]
				continue
			}
			return cfg, false
		}
		// Round finished: decide whether to move.
		if !h.step() {
			h.done = true
			return space.Config{}, true
		}
	}
}

// step refills pending with unknown neighbors, or — if all neighbors are
// known — moves to the best strictly improving neighbor. It returns false
// when the climb has converged to a local maximum.
func (h *HillClimb) step() bool {
	neighbors := h.sp.Neighbors(h.current)
	var unknown []space.Config
	for _, nb := range neighbors {
		if _, ok := h.known[nb]; !ok {
			unknown = append(unknown, nb)
		}
	}
	if len(unknown) > 0 {
		h.pending = unknown
		return true
	}
	cur := h.known[h.current]
	bestNb := h.current
	bestKPI := cur
	for _, nb := range neighbors {
		if k := h.known[nb]; k > bestKPI {
			bestKPI = k
			bestNb = nb
		}
	}
	if bestNb == h.current {
		return false // local maximum
	}
	h.current = bestNb
	return true
}

// Observe implements Optimizer.
func (h *HillClimb) Observe(cfg space.Config, kpi float64) {
	h.known[cfg] = kpi
	h.note(cfg, kpi)
	if len(h.pending) > 0 && h.pending[0] == cfg {
		h.pending = h.pending[1:]
	}
}

// Current returns the climber's current position (for tests).
func (h *HillClimb) Current() space.Config { return h.current }
