package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
)

// Endpoint is an additional route mounted on the introspection handler —
// how subsystems outside obs (e.g. the STM's conflict profiler) expose
// their own debug surfaces without obs importing them.
type Endpoint struct {
	// Path is the route pattern (e.g. "/debug/stm/conflicts").
	Path string
	// Desc is the one-line description shown on the index page.
	Desc string
	// Handler serves the route.
	Handler http.Handler
}

// NewHandler returns the tuner's HTTP introspection surface:
//
//	/metrics        Prometheus text exposition of reg
//	/metrics.json   the same metrics as indented JSON
//	/status         the status callback's value as indented JSON
//	/debug/pprof/*  the runtime's profiling endpoints
//	/               a plain-text index of the above
//
// status may be nil, in which case /status serves 404. Additional routes
// (with index entries) are mounted via extra. The handler is standalone
// (its own ServeMux) so callers never mutate http.DefaultServeMux.
func NewHandler(reg *Registry, status func() any, extra ...Endpoint) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		if status == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(status())
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	index := "autopn introspection\n\n" +
		"/metrics        Prometheus text\n" +
		"/metrics.json   metrics as JSON\n" +
		"/status         tuner status (current config, phase, recent decisions)\n" +
		"/debug/pprof/   runtime profiles\n"
	for _, e := range extra {
		mux.Handle(e.Path, e.Handler)
		index += fmt.Sprintf("%-15s %s\n", e.Path, e.Desc)
	}

	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(index))
	})
	return mux
}
