package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

func sampleDecisions() []Decision {
	t0 := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	return []Decision{
		{Time: t0, Kind: KindPhase, Phase: "initial-sampling", Note: "session start"},
		{Time: t0.Add(time.Second), Kind: KindMeasurement, Phase: "initial-sampling",
			T: 1, C: 1, Throughput: 1234.5, CV: 0.08, Commits: 50, WindowMS: 40.5},
		{Time: t0.Add(2 * time.Second), Kind: KindSuggestion, Phase: "smbo",
			T: 3, C: 2, EI: 120.5, RelEI: 0.097},
		{Time: t0.Add(3 * time.Second), Kind: KindMeasurement, Phase: "smbo",
			T: 3, C: 2, Throughput: 900, CV: 0.3, Commits: 7, WindowMS: 2000, TimedOut: true},
		{Time: t0.Add(4 * time.Second), Kind: KindConverged, T: 2, C: 2, Throughput: 2000},
		{Time: t0.Add(5 * time.Second), Kind: KindChangePoint, Phase: "watching", Note: "cusum"},
	}
}

// TestJSONLRoundTrip writes a decision trail through the JSONL recorder and
// re-parses it line by line: every field must survive, sequence numbers
// must be monotone, and the output must be strict JSONL.
func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	in := sampleDecisions()
	for _, d := range in {
		j.Record(d)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	sc := bufio.NewScanner(&buf)
	var out []Decision
	for sc.Scan() {
		var d Decision
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("line %d does not parse: %v", len(out)+1, err)
		}
		out = append(out, d)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d records, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Seq != uint64(i+1) {
			t.Errorf("record %d: seq = %d, want %d", i, out[i].Seq, i+1)
		}
		want := in[i]
		want.Seq = out[i].Seq
		if !want.Time.Equal(out[i].Time) {
			t.Errorf("record %d: time = %v, want %v", i, out[i].Time, want.Time)
		}
		got := out[i]
		got.Time, want.Time = time.Time{}, time.Time{}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("record %d round-trip mismatch:\ngot  %+v\nwant %+v", i, got, want)
		}
	}
}

func TestJSONLStampsTime(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.Record(Decision{Kind: KindPhase})
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	var d Decision
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if d.Time.IsZero() {
		t.Error("recorder did not stamp a zero Time")
	}
}

func TestRingLast(t *testing.T) {
	r := NewRing(8)
	for i := 1; i <= 30; i++ {
		r.Record(Decision{Kind: KindMeasurement, Commits: i})
	}
	if r.Len() != 8 {
		t.Fatalf("Len = %d, want 8", r.Len())
	}
	last := r.Last(5)
	if len(last) != 5 {
		t.Fatalf("Last(5) returned %d", len(last))
	}
	for i, d := range last {
		if want := 26 + i; d.Commits != want {
			t.Errorf("Last(5)[%d].Commits = %d, want %d", i, d.Commits, want)
		}
	}
	if got := len(r.Last(100)); got != 8 {
		t.Errorf("Last(100) returned %d, want 8", got)
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(Decision{Kind: KindMeasurement})
				_ = r.Last(16)
			}
		}()
	}
	wg.Wait()
	if r.Len() != 16 {
		t.Errorf("Len = %d, want 16", r.Len())
	}
}

func TestMultiFansOut(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	ring := NewRing(4)
	m := Multi{j, ring, Nop{}}
	m.Record(Decision{Kind: KindApply, T: 2, C: 3})
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("JSONL recorder saw nothing")
	}
	if ring.Len() != 1 {
		t.Error("ring recorder saw nothing")
	}
}

// TestJSONLFileRotation fills a size-capped file recorder past its limit
// and checks the rotation contract: the live file restarts, the previous
// generation moves to path+".1", and no records are lost across the
// boundary (sequence numbers stay contiguous across both files).
func TestJSONLFileRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions.jsonl")
	// Each record is ~100 bytes; cap at 1 KiB so ~10 records per generation.
	j, err := NewJSONLFile(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		j.Record(Decision{Kind: KindMeasurement, T: 1 + i%4, C: 1 + i%3,
			Throughput: float64(1000 + i), Commits: i, Aborts: uint64(i % 7)})
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	readSeqs := func(p string) []uint64 {
		t.Helper()
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		var seqs []uint64
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			var d Decision
			if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
				t.Fatalf("%s: bad line %q: %v", p, sc.Text(), err)
			}
			seqs = append(seqs, d.Seq)
		}
		return seqs
	}

	old := readSeqs(path + ".1")
	cur := readSeqs(path)
	if len(old) == 0 {
		t.Fatal("no rotated file produced")
	}
	fi, err := os.Stat(path + ".1")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() > 1024 {
		t.Errorf("rotated file is %d bytes, over the 1024 cap", fi.Size())
	}
	// The live file holds the tail; together the two most recent
	// generations must cover a contiguous suffix ending at n. Earlier
	// generations are deliberately discarded (bounded footprint), so only
	// contiguity is checked, not full coverage.
	all := append(old, cur...)
	if all[len(all)-1] != n {
		t.Fatalf("last seq = %d, want %d", all[len(all)-1], n)
	}
	for i := 1; i < len(all); i++ {
		if all[i] != all[i-1]+1 {
			t.Fatalf("sequence gap at %d: %d -> %d", i, all[i-1], all[i])
		}
	}
}

// TestJSONLFileNoRotationWhenUncapped checks maxBytes <= 0 disables
// rotation entirely.
func TestJSONLFileNoRotationWhenUncapped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions.jsonl")
	j, err := NewJSONLFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		j.Record(Decision{Kind: KindMeasurement, Throughput: float64(i)})
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".1"); !os.IsNotExist(err) {
		t.Errorf("uncapped recorder rotated: %v", err)
	}
}

// TestJSONLFileConcurrent hammers one file recorder from several
// goroutines across rotation boundaries (meaningful under -race).
func TestJSONLFileConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions.jsonl")
	j, err := NewJSONLFile(path, 2048)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				j.Record(Decision{Kind: KindMeasurement, T: g, C: i, Throughput: float64(i)})
			}
		}(g)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
}
