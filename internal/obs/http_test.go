package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

func TestHandlerEndpoints(t *testing.T) {
	reg := populated()
	status := func() any {
		return map[string]any{"phase": "smbo", "t": 3, "c": 2}
	}
	srv := httptest.NewServer(NewHandler(reg, status))
	defer srv.Close()

	code, ct, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type %q", ct)
	}
	for _, want := range []string{
		"# TYPE autopn_test_commits_total counter",
		"autopn_test_commits_total 42",
		"autopn_test_window_cv{quantile=\"0.5\"}",
		"autopn_test_window_cv_count 5",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	code, ct, body = get(t, srv, "/metrics.json")
	if code != http.StatusOK || !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/metrics.json status %d, content type %q", code, ct)
	}
	var mj map[string]any
	if err := json.Unmarshal([]byte(body), &mj); err != nil {
		t.Fatalf("/metrics.json does not parse: %v", err)
	}

	code, _, body = get(t, srv, "/status")
	if code != http.StatusOK {
		t.Fatalf("/status status %d", code)
	}
	var st map[string]any
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/status does not parse: %v", err)
	}
	if st["phase"] != "smbo" {
		t.Errorf("/status phase = %v", st["phase"])
	}

	if code, _, _ := get(t, srv, "/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", code)
	}
	if code, _, body := get(t, srv, "/"); code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index status %d body %q", code, body)
	}
	if code, _, _ := get(t, srv, "/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path status %d, want 404", code)
	}
}

func TestHandlerNilStatus(t *testing.T) {
	srv := httptest.NewServer(NewHandler(NewRegistry(), nil))
	defer srv.Close()
	if code, _, _ := get(t, srv, "/status"); code != http.StatusNotFound {
		t.Errorf("/status with nil callback: status %d, want 404", code)
	}
}
