package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

func TestHandlerEndpoints(t *testing.T) {
	reg := populated()
	status := func() any {
		return map[string]any{"phase": "smbo", "t": 3, "c": 2}
	}
	srv := httptest.NewServer(NewHandler(reg, status))
	defer srv.Close()

	code, ct, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type %q", ct)
	}
	for _, want := range []string{
		"# TYPE autopn_test_commits_total counter",
		"autopn_test_commits_total 42",
		"autopn_test_window_cv{quantile=\"0.5\"}",
		"autopn_test_window_cv_count 5",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	code, ct, body = get(t, srv, "/metrics.json")
	if code != http.StatusOK || !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/metrics.json status %d, content type %q", code, ct)
	}
	var mj map[string]any
	if err := json.Unmarshal([]byte(body), &mj); err != nil {
		t.Fatalf("/metrics.json does not parse: %v", err)
	}

	code, _, body = get(t, srv, "/status")
	if code != http.StatusOK {
		t.Fatalf("/status status %d", code)
	}
	var st map[string]any
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/status does not parse: %v", err)
	}
	if st["phase"] != "smbo" {
		t.Errorf("/status phase = %v", st["phase"])
	}

	if code, _, _ := get(t, srv, "/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", code)
	}
	if code, _, body := get(t, srv, "/"); code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index status %d body %q", code, body)
	}
	if code, _, _ := get(t, srv, "/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path status %d, want 404", code)
	}
}

func TestHandlerNilStatus(t *testing.T) {
	srv := httptest.NewServer(NewHandler(NewRegistry(), nil))
	defer srv.Close()
	if code, _, _ := get(t, srv, "/status"); code != http.StatusNotFound {
		t.Errorf("/status with nil callback: status %d, want 404", code)
	}
}

// TestHandlerExtraEndpoints mounts additional debug endpoints (the hook
// autopn-live uses for /debug/stm/conflicts and /debug/stm/trace) and
// checks they serve and appear on the index page.
func TestHandlerExtraEndpoints(t *testing.T) {
	extra := Endpoint{
		Path: "/debug/stm/conflicts",
		Desc: "conflict report",
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			io.WriteString(w, `{"reasons":{}}`)
		}),
	}
	srv := httptest.NewServer(NewHandler(NewRegistry(), nil, extra))
	defer srv.Close()

	code, ct, body := get(t, srv, "/debug/stm/conflicts")
	if code != http.StatusOK || !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("extra endpoint: status %d content type %q", code, ct)
	}
	if body != `{"reasons":{}}` {
		t.Errorf("extra endpoint body %q", body)
	}
	if _, _, index := get(t, srv, "/"); !strings.Contains(index, "/debug/stm/conflicts") {
		t.Errorf("index does not list the extra endpoint:\n%s", index)
	}
}

// TestMetricsScrapeDuringUpdates scrapes /metrics and /metrics.json while
// counters, gauges and histograms are being updated and late metrics are
// still being registered — the concurrent-observability race gate.
func TestMetricsScrapeDuringUpdates(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("autopn_test_ops_total")
	g := reg.Gauge("autopn_test_level")
	h := reg.Histogram("autopn_test_latency_seconds")
	srv := httptest.NewServer(NewHandler(reg, func() any { return map[string]int{"ok": 1} }))
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // writer: update metrics and register new ones
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.Add(1)
			g.Set(float64(i))
			h.Observe(float64(i%10) / 1000)
			if i%50 == 0 {
				reg.CounterFunc(fmt.Sprintf("autopn_test_late_%d_total", i), func() uint64 { return 1 })
				reg.RegisterHistogram(fmt.Sprintf("autopn_test_late_hist_%d", i), NewHistogram(16))
			}
		}
	}()
	scrape := func(path string) error {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.ReadAll(resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: status %d", path, resp.StatusCode)
		}
		return nil
	}
	go func() { // scraper (no t.Fatal off the test goroutine)
		defer wg.Done()
		for i := 0; i < 100; i++ {
			if err := scrape("/metrics"); err != nil {
				t.Error(err)
				return
			}
			if err := scrape("/metrics.json"); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}
