package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// populated builds a registry with deterministic contents for the golden
// exporter tests.
func populated() *Registry {
	r := NewRegistry()
	r.Counter("autopn_test_commits_total").Add(42)
	r.CounterFunc("autopn_test_bridged_total", func() uint64 { return 7 })
	r.Gauge("autopn_test_current_t").Set(4)
	r.GaugeFunc("autopn_test_space_size", func() float64 { return 14 })
	h := r.Histogram("autopn_test_window_cv")
	for _, v := range []float64{0.05, 0.08, 0.12, 0.20, 0.03} {
		h.Observe(v)
	}
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (rerun with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := populated().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.prom.golden", buf.Bytes())
}

func TestWriteJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := populated().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// Must stay parseable regardless of the golden comparison.
	var v map[string]any
	if err := json.Unmarshal(buf.Bytes(), &v); err != nil {
		t.Fatalf("exported JSON does not parse: %v", err)
	}
	checkGolden(t, "metrics.json.golden", buf.Bytes())
}

func TestHistogramSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	if s := h.Snapshot(); s.Count != 0 || s.P50 != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
	// Overflow the window: cumulative count/sum keep growing, order
	// statistics cover only the last defaultHistogramWindow samples.
	n := defaultHistogramWindow + 100
	for i := 0; i < n; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if s.Count != uint64(n) {
		t.Errorf("Count = %d, want %d", s.Count, n)
	}
	if s.Window != defaultHistogramWindow {
		t.Errorf("Window = %d, want %d", s.Window, defaultHistogramWindow)
	}
	if s.Min != 100 || s.Max != float64(n-1) {
		t.Errorf("window bounds [%g, %g], want [100, %d]", s.Min, s.Max, n-1)
	}
	if s.P50 < s.Min || s.P50 > s.Max || s.P90 < s.P50 || s.P99 < s.P90 {
		t.Errorf("quantiles out of order: %+v", s)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Set(float64(i))
				r.Histogram("h").Observe(float64(i))
				if i%100 == 0 {
					var buf bytes.Buffer
					if err := r.WritePrometheus(&buf); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("h").Snapshot().Count; got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestRegistryNameValidation(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "9starts_with_digit", "has-dash", "has space"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q accepted", bad)
				}
			}()
			r.Counter(bad)
		}()
	}
	r.Counter("ok_name")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("cross-kind reuse of a name accepted")
			}
		}()
		r.Gauge("ok_name")
	}()
}
