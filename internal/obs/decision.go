package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// Decision kinds. Every record the tuner emits carries exactly one.
const (
	// KindMeasurement is one completed monitoring window: the configuration
	// under test, its throughput, CV, commits, window length and whether the
	// window was ended by the adaptive timeout.
	KindMeasurement = "measurement"
	// KindSuggestion is one candidate the optimizer proposes: the SMBO
	// acquisition's pick (with EI/RelEI) or a hill-climbing probe.
	KindSuggestion = "suggestion"
	// KindPhase marks a tuning-phase transition (initial-sampling → smbo →
	// hill-climbing → done), with the new phase in Phase and the reason in
	// Note.
	KindPhase = "phase"
	// KindConverged reports the optimizer's final configuration and KPI for
	// one optimization session.
	KindConverged = "converged"
	// KindApply records the actuator applying a configuration outside the
	// regular exploration flow (the final best of a session).
	KindApply = "apply"
	// KindChangePoint is a CUSUM workload-change detection that triggers a
	// re-tune.
	KindChangePoint = "change-point"
	// KindQuarantine records the self-protection layer banning a
	// configuration from the candidate space after repeated starved windows;
	// Watchdog marks whether the final strike was a watchdog trip.
	KindQuarantine = "quarantine"
	// KindRecovery records a tuner warm-starting from a persisted
	// checkpoint after a restart: the restored last-known-good (t, c) is
	// applied immediately and the cold initial-sampling session is
	// skipped. The serving layer's crash-recovery path emits it (see
	// docs/DURABILITY.md).
	KindRecovery = "recovery"
	// KindShutdown records a graceful clean shutdown of the component
	// owning the decision log (the serving layer's drain writes one per
	// shard alongside the WAL's clean-shutdown marker).
	KindShutdown = "clean-shutdown"
	// KindFallback records the actuator reverting to the last known-good
	// configuration after a starved or watchdog-tripped window, so the
	// system never keeps running a pathological (t,c) while the optimizer
	// deliberates.
	KindFallback = "fallback"
	// KindSchedPromote records the contention scheduler promoting a hot box
	// into a conflict domain: transactions attributing their aborts to that
	// box are steered onto a serial lane. Note carries the box identity and
	// the abort share that crossed the threshold (see docs/SCHEDULER.md).
	KindSchedPromote = "sched-promote"
	// KindSchedDemote records the scheduler demoting a cooled conflict
	// domain back to the optimistic path.
	KindSchedDemote = "sched-demote"
)

// Decision is one structured record of the tuner's decision trail. Fields
// that do not apply to a given Kind are zero and omitted from the JSON
// encoding; T and C are kept even when zero-valued records are impossible
// so every record that names a configuration is self-describing.
type Decision struct {
	// Time is the wall-clock timestamp. Recorders stamp it at Record time
	// when the producer leaves it zero.
	Time time.Time `json:"ts"`
	// Seq is a per-recorder monotone sequence number, assigned by the
	// recorder.
	Seq uint64 `json:"seq"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Phase is the tuning phase the decision was made in (initial-sampling,
	// smbo, hill-climbing, done, watching).
	Phase string `json:"phase,omitempty"`
	// T, C name the configuration the decision concerns.
	T int `json:"t,omitempty"`
	C int `json:"c,omitempty"`
	// EI and RelEI carry the acquisition value of a KindSuggestion from the
	// SMBO phase (absolute and relative to the incumbent best).
	EI    float64 `json:"ei,omitempty"`
	RelEI float64 `json:"rel_ei,omitempty"`
	// Throughput is the measured (KindMeasurement) or best-known
	// (KindConverged) KPI in commits/second.
	Throughput float64 `json:"throughput,omitempty"`
	// CV is the coefficient of variation of the window's running throughput
	// estimates.
	CV float64 `json:"cv,omitempty"`
	// Commits is the number of commits observed in the window.
	Commits int `json:"commits,omitempty"`
	// Aborts is the number of STM aborts (top-level + nested) observed in
	// the window, correlating a tuning decision with the contention that
	// drove it.
	Aborts uint64 `json:"aborts,omitempty"`
	// WindowMS is the measurement window length in milliseconds.
	WindowMS float64 `json:"window_ms,omitempty"`
	// TimedOut marks a window ended by the adaptive timeout rather than CV
	// stability.
	TimedOut bool `json:"timed_out,omitempty"`
	// Watchdog marks a KindMeasurement window force-ended by the monitor's
	// watchdog, and on KindQuarantine/KindFallback records that a watchdog
	// trip (rather than a zero-commit gap timeout) triggered the action.
	Watchdog bool `json:"watchdog,omitempty"`
	// Livelocks is the number of STM livelock-detector trips observed during
	// the window (KindMeasurement only).
	Livelocks uint64 `json:"livelocks,omitempty"`
	// Note carries free-form context (stop reasons, detector identity).
	Note string `json:"note,omitempty"`
}

// Recorder consumes the tuner's decision trail. Implementations must be
// safe for concurrent use.
type Recorder interface {
	Record(Decision)
}

// Nop is a Recorder that discards everything — the default wired into the
// optimizer so library users pay nothing for the decision log.
type Nop struct{}

// Record implements Recorder.
func (Nop) Record(Decision) {}

// stamp fills Time and Seq. seq is owned by the caller's lock.
func stamp(d *Decision, seq *uint64) {
	*seq++
	d.Seq = *seq
	if d.Time.IsZero() {
		d.Time = time.Now()
	}
}

// JSONL is a Recorder writing one JSON object per line, the
// machine-readable decision log autopn-live persists. Create with
// NewJSONL; call Flush (or Close) before reading the output.
type JSONL struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer
	seq uint64
	err error
}

// NewJSONL returns a JSONL recorder writing to w. If w is an io.Closer,
// Close closes it after flushing.
func NewJSONL(w io.Writer) *JSONL {
	j := &JSONL{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		j.c = c
	}
	return j
}

// Record implements Recorder. Encoding errors are sticky and reported by
// Err/Flush/Close; recording never blocks the tuner on I/O failure.
func (j *JSONL) Record(d Decision) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	stamp(&d, &j.seq)
	b, err := json.Marshal(d)
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.w.Write(append(b, '\n')); err != nil {
		j.err = err
	}
}

// Err returns the first error encountered while recording.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Flush writes buffered records through to the underlying writer.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	j.err = j.w.Flush()
	return j.err
}

// Close flushes and, when the underlying writer is an io.Closer, closes it.
func (j *JSONL) Close() error {
	err := j.Flush()
	j.mu.Lock()
	c := j.c
	j.c = nil
	j.mu.Unlock()
	if c != nil {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// JSONLFile is a JSONL recorder that owns its file and rotates it by size:
// when a record would push the current file past maxBytes, the file is
// renamed to path+".1" (replacing any previous rotation) and a fresh file
// is opened at path. At most two files ever exist, bounding the disk
// footprint of a long-running autopn-live at ~2×maxBytes.
type JSONLFile struct {
	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	path     string
	maxBytes int64
	size     int64
	seq      uint64
	err      error
}

// NewJSONLFile opens (truncating) a size-rotated JSONL recorder at path.
// maxBytes <= 0 disables rotation.
func NewJSONLFile(path string, maxBytes int64) (*JSONLFile, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &JSONLFile{f: f, w: bufio.NewWriter(f), path: path, maxBytes: maxBytes}, nil
}

// Record implements Recorder. Errors (encoding, I/O, rotation) are sticky
// and reported by Err/Flush/Close; recording never blocks the tuner.
func (j *JSONLFile) Record(d Decision) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	stamp(&d, &j.seq)
	b, err := json.Marshal(d)
	if err != nil {
		j.err = err
		return
	}
	line := int64(len(b) + 1)
	if j.maxBytes > 0 && j.size > 0 && j.size+line > j.maxBytes {
		if j.err = j.rotate(); j.err != nil {
			return
		}
	}
	if _, err := j.w.Write(append(b, '\n')); err != nil {
		j.err = err
		return
	}
	j.size += line
}

// rotate closes the current file, shifts it to path+".1" and reopens.
// Caller holds j.mu.
func (j *JSONLFile) rotate() error {
	if err := j.w.Flush(); err != nil {
		return err
	}
	if err := j.f.Close(); err != nil {
		return err
	}
	if err := os.Rename(j.path, j.path+".1"); err != nil {
		return err
	}
	f, err := os.Create(j.path)
	if err != nil {
		return err
	}
	j.f = f
	j.w = bufio.NewWriter(f)
	j.size = 0
	return nil
}

// Err returns the first error encountered while recording.
func (j *JSONLFile) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Flush writes buffered records through to the file.
func (j *JSONLFile) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	j.err = j.w.Flush()
	return j.err
}

// Close flushes and closes the file.
func (j *JSONLFile) Close() error {
	err := j.Flush()
	j.mu.Lock()
	f := j.f
	j.f = nil
	j.mu.Unlock()
	if f != nil {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Ring is a Recorder keeping the most recent decisions in memory — the
// backing store of the /status endpoint's "recent decisions" view.
type Ring struct {
	mu   sync.Mutex
	buf  []Decision
	next int
	n    int
	seq  uint64
}

// NewRing returns a ring recorder holding the last n decisions (n >= 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]Decision, n)}
}

// Record implements Recorder.
func (r *Ring) Record(d Decision) {
	r.mu.Lock()
	stamp(&d, &r.seq)
	r.buf[r.next] = d
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Len returns the number of decisions currently held.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Last returns up to k of the most recent decisions, oldest first.
func (r *Ring) Last(k int) []Decision {
	r.mu.Lock()
	defer r.mu.Unlock()
	if k > r.n {
		k = r.n
	}
	out := make([]Decision, 0, k)
	for i := r.n - k; i < r.n; i++ {
		out = append(out, r.buf[(r.next-r.n+i+2*len(r.buf))%len(r.buf)])
	}
	return out
}

// Multi fans one decision out to several recorders in order.
type Multi []Recorder

// Record implements Recorder.
func (m Multi) Record(d Decision) {
	for _, r := range m {
		r.Record(d)
	}
}
