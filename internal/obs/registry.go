// Package obs is the observability layer of autopn: a dependency-free
// metrics registry (atomic counters, gauges, windowed histograms) with
// Prometheus-text and JSON exporters, and a structured decision log that
// records every step the online tuner takes (sampled configurations,
// surrogate suggestions, acquisition values, measurement windows, CUSUM
// change-points).
//
// The package deliberately uses only the standard library so that the hot
// paths it instruments (the STM commit path, the monitor's window
// bookkeeping) pay nothing beyond an atomic increment, and so that library
// users who do not opt in pay nothing at all: every integration point in
// the rest of the tree accepts a nil *Registry or a Nop Recorder.
//
// Metric names follow the Prometheus conventions: snake_case, a
// `_total` suffix on monotone counters, base units (seconds) in the name.
// See docs/OBSERVABILITY.md for the full catalogue exported by a live run.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomically settable float64.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last stored value (zero before the first Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// defaultHistogramWindow is the number of most-recent observations a
// Histogram keeps for its quantile estimates. Cumulative count and sum are
// unbounded; only the quantiles are windowed, which is the behaviour a
// continuously running tuner needs (recent window CV, recent throughput)
// without unbounded memory.
const defaultHistogramWindow = 512

// Histogram records a stream of float64 observations. It keeps exact
// cumulative count/sum plus a sliding window of the most recent
// observations from which min/max/mean/quantiles are computed on demand.
// Create with Registry.Histogram (registered) or NewHistogram
// (standalone, registrable later with Registry.RegisterHistogram); the
// zero value is not usable.
type Histogram struct {
	mu    sync.Mutex
	ring  []float64
	next  int
	count uint64 // cumulative observations
	sum   float64

	// Exemplars: the largest trace-tagged observations still inside the
	// sliding window (see ObserveExemplar). maxExemplars entries, unordered.
	ex []exemplar
}

// maxExemplars bounds the tail-exemplar set kept per histogram.
const maxExemplars = 4

// exemplar is one stored tail exemplar; at is the cumulative observation
// count when it was recorded, used to age entries out with the window.
type exemplar struct {
	value float64
	trace uint64
	at    uint64
}

// Exemplar links one tail observation of a histogram to the trace that
// produced it — the hook that lets a p99 bucket answer "show me one
// request that did this" (the trace ID resolves in /debug/server/trace).
type Exemplar struct {
	Value   float64 `json:"value"`
	TraceID uint64  `json:"trace_id"`
}

// NewHistogram returns a standalone histogram with the given sliding
// window (<= 0 selects the default of 512). Use it when the owning
// subsystem wants to keep the histogram whether or not a registry exists,
// and bridge it in with Registry.RegisterHistogram.
func NewHistogram(window int) *Histogram {
	if window <= 0 {
		window = defaultHistogramWindow
	}
	return &Histogram{ring: make([]float64, window)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.observeLocked(v)
	h.mu.Unlock()
}

func (h *Histogram) observeLocked(v float64) {
	h.ring[h.next] = v
	h.next = (h.next + 1) % len(h.ring)
	h.count++
	h.sum += v
}

// ObserveExemplar records one sample and, when traceID is nonzero, offers
// it as a tail exemplar: the histogram keeps the few largest trace-tagged
// observations of the current sliding window, so a tail quantile can be
// traced back to a concrete request. traceID == 0 degrades to Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID uint64) {
	h.mu.Lock()
	h.observeLocked(v)
	if traceID != 0 {
		// Age out exemplars whose observation has left the sliding window,
		// then keep v if there is room or it beats the smallest survivor.
		kept := h.ex[:0]
		for _, e := range h.ex {
			if h.count-e.at <= uint64(len(h.ring)) {
				kept = append(kept, e)
			}
		}
		h.ex = kept
		if len(h.ex) < maxExemplars {
			h.ex = append(h.ex, exemplar{value: v, trace: traceID, at: h.count})
		} else {
			min := 0
			for i := 1; i < len(h.ex); i++ {
				if h.ex[i].value < h.ex[min].value {
					min = i
				}
			}
			if v >= h.ex[min].value {
				h.ex[min] = exemplar{value: v, trace: traceID, at: h.count}
			}
		}
	}
	h.mu.Unlock()
}

// HistogramSnapshot is a point-in-time summary of a Histogram. Count and
// Sum are cumulative; the order statistics cover only the sliding window.
type HistogramSnapshot struct {
	Count  uint64  `json:"count"`
	Sum    float64 `json:"sum"`
	Window int     `json:"window"` // samples currently in the window
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Mean   float64 `json:"mean"` // mean of the window
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	P99    float64 `json:"p99"`
	// Exemplars are the largest trace-tagged observations still inside the
	// window (ObserveExemplar), largest first. Empty unless the owning
	// subsystem records exemplars.
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// Snapshot summarizes the histogram. With no observations the order
// statistics are zero.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	n := int(h.count)
	if n > len(h.ring) {
		n = len(h.ring)
	}
	window := make([]float64, n)
	copy(window, h.ring[:n])
	s := HistogramSnapshot{Count: h.count, Sum: h.sum, Window: n}
	for _, e := range h.ex {
		if h.count-e.at <= uint64(len(h.ring)) {
			s.Exemplars = append(s.Exemplars, Exemplar{Value: e.value, TraceID: e.trace})
		}
	}
	h.mu.Unlock()
	sort.Slice(s.Exemplars, func(i, j int) bool { return s.Exemplars[i].Value > s.Exemplars[j].Value })

	if n == 0 {
		return s
	}
	sort.Float64s(window)
	s.Min = window[0]
	s.Max = window[n-1]
	total := 0.0
	for _, v := range window {
		total += v
	}
	s.Mean = total / float64(n)
	s.P50 = quantile(window, 0.50)
	s.P90 = quantile(window, 0.90)
	s.P99 = quantile(window, 0.99)
	return s
}

// quantile returns the q-th quantile of sorted (nearest-rank with linear
// interpolation).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Registry is a named collection of metrics. All methods are safe for
// concurrent use; the Counter/Gauge/Histogram accessors create the metric
// on first use and return the same instance thereafter, so call sites can
// either cache the returned pointer (hot paths) or look it up each time
// (cold paths).
//
// Besides owned metrics, a Registry accepts read-at-export callbacks
// (CounterFunc, GaugeFunc) for values that already live elsewhere — the
// bridge the STM's sharded Stats counters use, so the commit path keeps
// its striped counters and the registry never duplicates state.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	counterFns map[string]func() uint64
	gaugeFns   map[string]func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		hists:      make(map[string]*Histogram),
		counterFns: make(map[string]func() uint64),
		gaugeFns:   make(map[string]func() float64),
	}
}

// checkName panics on names that are not valid Prometheus metric names or
// that are already registered with a different metric kind. Callers hold mu.
func (r *Registry) checkName(name, kind string) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for otherKind, taken := range map[string]bool{
		"counter":      kind != "counter" && r.counters[name] != nil,
		"gauge":        kind != "gauge" && r.gauges[name] != nil,
		"histogram":    kind != "histogram" && r.hists[name] != nil,
		"counter_func": kind != "counter_func" && r.counterFns[name] != nil,
		"gauge_func":   kind != "gauge_func" && r.gaugeFns[name] != nil,
	} {
		if taken {
			panic(fmt.Sprintf("obs: metric %q already registered as %s", name, otherKind))
		}
	}
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		letter := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':'
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// Counter returns the counter registered under name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.counters[name]; c != nil {
		return c
	}
	r.checkName(name, "counter")
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g := r.gauges[name]; g != nil {
		return g
	}
	r.checkName(name, "gauge")
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it (with
// the default sliding window) if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.hists[name]; h != nil {
		return h
	}
	r.checkName(name, "histogram")
	h := &Histogram{ring: make([]float64, defaultHistogramWindow)}
	r.hists[name] = h
	return h
}

// RegisterHistogram registers an existing histogram (NewHistogram) under
// name. Re-registering a name replaces the previous histogram.
func (r *Registry) RegisterHistogram(name string, h *Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "histogram")
	r.hists[name] = h
}

// CounterFunc registers fn as a counter read at export time. Use it to
// bridge counters that already exist elsewhere (e.g. the STM's sharded
// Stats) without duplicating state. Re-registering a name replaces the
// callback.
func (r *Registry) CounterFunc(name string, fn func() uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "counter_func")
	r.counterFns[name] = fn
}

// GaugeFunc registers fn as a gauge read at export time. Re-registering a
// name replaces the callback.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "gauge_func")
	r.gaugeFns[name] = fn
}

// family is one named metric resolved for export.
type family struct {
	name string
	kind string // "counter" | "gauge" | "summary"
	val  float64
	hist *HistogramSnapshot
}

// families resolves every metric to an export value, sorted by name so the
// output is deterministic (golden-testable) and diff-friendly.
func (r *Registry) families() []family {
	r.mu.Lock()
	out := make([]family, 0, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.counterFns)+len(r.gaugeFns))
	for name, c := range r.counters {
		out = append(out, family{name: name, kind: "counter", val: float64(c.Value())})
	}
	for name, fn := range r.counterFns {
		out = append(out, family{name: name, kind: "counter", val: float64(fn())})
	}
	for name, g := range r.gauges {
		out = append(out, family{name: name, kind: "gauge", val: g.Value()})
	}
	for name, fn := range r.gaugeFns {
		out = append(out, family{name: name, kind: "gauge", val: fn()})
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.Unlock()

	// Snapshot histograms outside the registry lock: Snapshot takes the
	// histogram's own lock and sorts its window.
	for name, h := range hists {
		s := h.Snapshot()
		out = append(out, family{name: name, kind: "summary", hist: &s})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func formatFloat(v float64) string {
	if math.IsNaN(v) {
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format (version 0.0.4). Histograms are rendered as summaries with p50,
// p90 and p99 quantiles over their sliding window.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.families() {
		var err error
		switch f.kind {
		case "summary":
			s := f.hist
			_, err = fmt.Fprintf(w,
				"# TYPE %[1]s summary\n%[1]s{quantile=\"0.5\"} %[2]s\n%[1]s{quantile=\"0.9\"} %[3]s\n%[1]s{quantile=\"0.99\"} %[4]s\n%[1]s_sum %[5]s\n%[1]s_count %[6]d\n",
				f.name, formatFloat(s.P50), formatFloat(s.P90), formatFloat(s.P99), formatFloat(s.Sum), s.Count)
			// Tail exemplars ride along as comment lines (the 0.0.4 text
			// format has no exemplar syntax; scrapers skip comments, humans
			// and autopn-analyze read them).
			for _, e := range s.Exemplars {
				if err != nil {
					break
				}
				_, err = fmt.Fprintf(w, "# exemplar %s{trace_id=\"%016x\"} %s\n",
					f.name, e.TraceID, formatFloat(e.Value))
			}
		default:
			_, err = fmt.Fprintf(w, "# TYPE %[1]s %[2]s\n%[1]s %[3]s\n", f.name, f.kind, formatFloat(f.val))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Snapshot returns a JSON-marshalable view of every metric: counters and
// gauges as plain numbers, histograms as HistogramSnapshot summaries.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	counters := make(map[string]uint64)
	gauges := make(map[string]float64)
	histograms := make(map[string]HistogramSnapshot)
	for _, f := range r.families() {
		switch f.kind {
		case "counter":
			counters[f.name] = uint64(f.val)
		case "gauge":
			gauges[f.name] = f.val
		case "summary":
			histograms[f.name] = *f.hist
		}
	}
	out["counters"] = counters
	out["gauges"] = gauges
	out["histograms"] = histograms
	return out
}

// WriteJSON writes the Snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
