// Benchmarks regenerating every table and figure of the paper (run with
// `go test -bench=. -benchmem`). Each figure bench executes a reduced but
// structurally complete version of the experiment per iteration and
// reports the headline quantities as custom metrics (DFO in percent,
// explorations in configs), so `go test -bench` output doubles as a
// compact reproduction log. The ablation benches cover the design choices
// called out in DESIGN.md, and the stm benches measure the substrate
// itself.
package autopn_test

import (
	"sync/atomic"
	"testing"
	"time"

	"autopn/internal/core"
	"autopn/internal/ensemble"
	"autopn/internal/experiment"
	"autopn/internal/m5"
	"autopn/internal/simcore"
	"autopn/internal/smbo"
	"autopn/internal/space"
	"autopn/internal/stats"
	"autopn/internal/stm"
	"autopn/internal/surface"
	"autopn/internal/trace"
)

// --- Fig. 1: throughput surfaces ---

func BenchmarkFig1a(b *testing.B) {
	var res experiment.SurfaceResult
	for i := 0; i < b.N; i++ {
		res = experiment.Fig1(surface.TPCC("med"))
	}
	b.ReportMetric(float64(res.Best.Cfg.T), "best-t")
	b.ReportMetric(float64(res.Best.Cfg.C), "best-c")
	b.ReportMetric(res.Best.Throughput/res.Seq, "best/seq-x")
}

func BenchmarkFig1b(b *testing.B) {
	var res experiment.SurfaceResult
	for i := 0; i < b.N; i++ {
		res = experiment.Fig1(surface.Array("90"))
	}
	b.ReportMetric(float64(res.Best.Cfg.T), "best-t")
	b.ReportMetric(float64(res.Best.Cfg.C), "best-c")
	b.ReportMetric(res.Best.Throughput/res.Seq, "best/seq-x")
}

// --- §VII-A: the static-configuration motivation table ---

func BenchmarkStaticBaseline(b *testing.B) {
	var res experiment.StaticResult
	for i := 0; i < b.N; i++ {
		res = experiment.StaticBaseline(surface.AllWorkloads())
	}
	b.ReportMetric(res.MeanDFO*100, "meanDFO%")
	b.ReportMetric(res.WorstSlowdown, "worst-x")
}

// --- Fig. 5: optimizer comparison ---

func fig5Bench(b *testing.B, strategy string) {
	cfg := experiment.DefaultFig5Config()
	cfg.Reps = 2
	var keep []experiment.Factory
	for _, f := range cfg.Factories {
		if f.Name == strategy {
			keep = append(keep, f)
		}
	}
	cfg.Factories = keep
	var res []experiment.StrategyResult
	for i := 0; i < b.N; i++ {
		res = experiment.Fig5(cfg)
	}
	b.ReportMetric(res[0].MeanFinalDFO*100, "meanDFO%")
	b.ReportMetric(res[0].P90FinalDFO*100, "p90DFO%")
	b.ReportMetric(res[0].MeanExplorations, "explorations")
}

func BenchmarkFig5AutoPN(b *testing.B)     { fig5Bench(b, "autopn") }
func BenchmarkFig5AutoPNNoHC(b *testing.B) { fig5Bench(b, "autopn-noHC") }
func BenchmarkFig5Genetic(b *testing.B)    { fig5Bench(b, "genetic") }
func BenchmarkFig5Random(b *testing.B)     { fig5Bench(b, "random") }
func BenchmarkFig5Grid(b *testing.B)       { fig5Bench(b, "grid") }
func BenchmarkFig5HillClimb(b *testing.B)  { fig5Bench(b, "hill-climbing") }
func BenchmarkFig5Annealing(b *testing.B)  { fig5Bench(b, "simulated-annealing") }

// --- Fig. 6: initial sampling and stop conditions ---

func BenchmarkFig6Sampling(b *testing.B) {
	cfg := experiment.DefaultFig6Config()
	cfg.Reps = 2
	var res []experiment.VariantResult
	for i := 0; i < b.N; i++ {
		res = experiment.Fig6Sampling(cfg)
	}
	for _, r := range res {
		if r.Name == "biased-9" {
			b.ReportMetric(r.MeanFinalDFO*100, "biased9-DFO%")
		}
		if r.Name == "biased-7" {
			b.ReportMetric(r.MeanFinalDFO*100, "biased7-DFO%")
		}
	}
}

func BenchmarkFig6Stop(b *testing.B) {
	cfg := experiment.DefaultFig6Config()
	cfg.Reps = 2
	var res []experiment.VariantResult
	for i := 0; i < b.N; i++ {
		res = experiment.Fig6Stop(cfg)
	}
	for _, r := range res {
		switch r.Name {
		case "EI<10%":
			b.ReportMetric(r.MeanExplorations, "ei10-expl")
		case "stubborn":
			b.ReportMetric(r.MeanExplorations, "stubborn-expl")
		}
	}
}

// --- Fig. 7: KPI monitoring ---

func BenchmarkFig7a(b *testing.B) {
	var pts []experiment.Fig7aPoint
	for i := 0; i < b.N; i++ {
		pts = experiment.Fig7a(2, 0xBE7A)
	}
	var slowShort, slowLong float64
	for _, p := range pts {
		if p.Workload == "array-slow" && p.Window == 20*time.Millisecond {
			slowShort = p.MeanDFO
		}
		if p.Workload == "array-slow" && p.Window == 40*time.Second {
			slowLong = p.MeanDFO
		}
	}
	b.ReportMetric(slowShort*100, "slow@20ms-DFO%")
	b.ReportMetric(slowLong*100, "slow@40s-DFO%")
}

func BenchmarkFig7b(b *testing.B) {
	var pts []experiment.Fig7bPoint
	for i := 0; i < b.N; i++ {
		pts = experiment.Fig7b(30*time.Second, 2, 0xBE7B)
	}
	for _, p := range pts {
		if p.Window == 40*time.Second {
			b.ReportMetric(p.MeanThroughputFrac*100, "40s-tput%")
		}
		if p.Window == 0 {
			b.ReportMetric(p.MeanThroughputFrac*100, "adaptive-tput%")
		}
	}
}

func BenchmarkFig7c(b *testing.B) {
	var pts []experiment.Fig7cPoint
	for i := 0; i < b.N; i++ {
		pts = experiment.Fig7c(2, 0xBE7C)
	}
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, p := range pts {
		sums[p.Policy] += p.MeanDFO
		counts[p.Policy]++
	}
	b.ReportMetric(sums["adaptive"]/float64(counts["adaptive"])*100, "adaptive-DFO%")
	b.ReportMetric(sums["WNOC30"]/float64(counts["WNOC30"])*100, "wnoc30-DFO%")
}

// --- Convergence speed (the paper's headline 9.8x / 32x claims) ---

func BenchmarkSpeed(b *testing.B) {
	cfg := experiment.DefaultSpeedConfig()
	cfg.Reps = 2
	var res []experiment.SpeedResult
	for i := 0; i < b.N; i++ {
		res = experiment.Speed(cfg)
	}
	var apTime, apDFO, baseTime float64
	n := 0
	for _, r := range res {
		if r.Name == "autopn" {
			apTime = r.MeanTimeToStability.Seconds()
			apDFO = r.MeanFinalDFO
		} else {
			baseTime += r.MeanTimeToStability.Seconds()
			n++
		}
	}
	b.ReportMetric(apTime, "autopn-stability-sec")
	b.ReportMetric(apDFO*100, "autopn-DFO%")
	b.ReportMetric(baseTime/float64(n)/apTime, "speedup-x")
}

// --- §VIII extension: heterogeneous transaction types ---

func BenchmarkHeteroMultiTuner(b *testing.B) {
	var res experiment.HeteroResult
	for i := 0; i < b.N; i++ {
		res = experiment.Hetero(3, 0xBE4E)
	}
	b.ReportMetric(res.SharedDFO*100, "shared-DFO%")
	b.ReportMetric(res.PerTypeDFO*100, "pertype-DFO%")
}

// --- §VII-E: overhead ---

func BenchmarkOverhead(b *testing.B) {
	var res experiment.OverheadResult
	for i := 0; i < b.N; i++ {
		res = experiment.Overhead(2, 200*time.Millisecond, 0xBEEF)
	}
	b.ReportMetric(res.DropFrac*100, "drop%")
}

// --- Ablations (design choices called out in DESIGN.md) ---

// ablationRun measures AutoPN's mean final DFO over a few workloads with
// the given options.
func ablationRun(opts core.Options, seed uint64) (meanDFO, meanExpl float64) {
	workloads := []*surface.Workload{
		surface.TPCC("med"), surface.Vacation("med"), surface.Array("50"), surface.Array("90"),
	}
	master := stats.NewRNG(seed)
	sp := space.New(surface.DefaultCores)
	var dfos, expls []float64
	for _, w := range workloads {
		tr := trace.Collect(w, sp, 10, master.Split())
		for rep := 0; rep < 3; rep++ {
			rng := master.Split()
			o := opts
			o.Stop = core.NewEIStop(0.10)
			opt := core.New(sp, rng, o)
			rec := experiment.RunOnTrace(opt, tr, trace.NewEvaluator(tr, rng.Split()), 120)
			dfos = append(dfos, rec.FinalDFO)
			expls = append(expls, float64(rec.Explorations))
		}
	}
	return stats.Mean(dfos), stats.Mean(expls)
}

func BenchmarkAblationEnsembleSize(b *testing.B) {
	for _, k := range []int{1, 5, 10, 20} {
		b.Run(map[int]string{1: "k1", 5: "k5", 10: "k10", 20: "k20"}[k], func(b *testing.B) {
			var dfo, expl float64
			for i := 0; i < b.N; i++ {
				dfo, expl = ablationRun(core.Options{EnsembleSize: k}, 0xAB1)
			}
			b.ReportMetric(dfo*100, "meanDFO%")
			b.ReportMetric(expl, "explorations")
		})
	}
}

func BenchmarkAblationAcquisition(b *testing.B) {
	for _, acq := range []core.Acquisition{core.AcqEI, core.AcqMean} {
		name := "EI"
		if acq == core.AcqMean {
			name = "greedy-mean"
		}
		b.Run(name, func(b *testing.B) {
			var dfo, expl float64
			for i := 0; i < b.N; i++ {
				dfo, expl = ablationRun(core.Options{Acquisition: acq}, 0xAB2)
			}
			b.ReportMetric(dfo*100, "meanDFO%")
			b.ReportMetric(expl, "explorations")
		})
	}
}

func BenchmarkAblationLeafModel(b *testing.B) {
	linear := ensemble.M5Trainer(m5.DefaultOptions())
	constOpts := m5.DefaultOptions()
	constOpts.ConstantLeaves = true
	constant := ensemble.M5Trainer(constOpts)
	for _, v := range []struct {
		name    string
		trainer ensemble.Trainer
	}{{"linear-leaves", linear}, {"constant-leaves", constant}} {
		b.Run(v.name, func(b *testing.B) {
			var dfo float64
			for i := 0; i < b.N; i++ {
				dfo, _ = ablationRun(core.Options{Trainer: v.trainer}, 0xAB3)
			}
			b.ReportMetric(dfo*100, "meanDFO%")
		})
	}
}

func BenchmarkAblationCVThreshold(b *testing.B) {
	w := surface.TPCC("med")
	sp := space.New(w.Cores)
	_, optTput := w.Optimum(sp)
	for _, cv := range []float64{0.01, 0.05, 0.10, 0.20} {
		name := map[float64]string{0.01: "cv1", 0.05: "cv5", 0.10: "cv10", 0.20: "cv20"}[cv]
		b.Run(name, func(b *testing.B) {
			var dfo, dur float64
			for i := 0; i < b.N; i++ {
				rng := stats.NewRNG(0xAB4)
				sim := simcore.New(w, rng.Uint64(), simcore.Options{})
				opt := core.New(sp, rng, core.Options{})
				simcore.Tune(sim, opt, simcore.AdaptiveCV{CVThreshold: cv}, 0)
				best, _ := opt.Best()
				dfo = 1 - w.Throughput(best)/optTput
				dur = sim.Now().Seconds()
			}
			b.ReportMetric(dfo*100, "DFO%")
			b.ReportMetric(dur, "tuning-sec")
		})
	}
}

// --- Substrate micro-benchmarks ---

// BenchmarkCommitStrategies contrasts the classic serialized commit with
// JVSTM's lock-free helping commit under concurrent disjoint writers (the
// workload where the commit section is the bottleneck).
func BenchmarkCommitStrategies(b *testing.B) {
	for _, v := range []struct {
		name     string
		lockFree bool
	}{{"serialized", false}, {"lock-free", true}} {
		b.Run(v.name, func(b *testing.B) {
			s := stm.New(stm.Options{LockFreeCommit: v.lockFree})
			boxes := make([]*stm.VBox[int], 64)
			for i := range boxes {
				boxes[i] = stm.NewVBox(0)
			}
			var next atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				slot := int(next.Add(1)) % len(boxes)
				for pb.Next() {
					_ = s.Atomic(func(tx *stm.Tx) error {
						boxes[slot].Put(tx, boxes[slot].Get(tx)+1)
						return nil
					})
				}
			})
		})
	}
}

func BenchmarkSTMReadOnlyTx(b *testing.B) {
	s := stm.New(stm.Options{})
	boxes := make([]*stm.VBox[int], 16)
	for i := range boxes {
		boxes[i] = stm.NewVBox(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Atomic(func(tx *stm.Tx) error {
			sum := 0
			for _, bx := range boxes {
				sum += bx.Get(tx)
			}
			_ = sum
			return nil
		})
	}
}

func BenchmarkSTMUpdateTx(b *testing.B) {
	s := stm.New(stm.Options{})
	box := stm.NewVBox(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Atomic(func(tx *stm.Tx) error {
			box.Put(tx, box.Get(tx)+1)
			return nil
		})
	}
}

func BenchmarkSTMNestedParallel(b *testing.B) {
	s := stm.New(stm.Options{})
	boxes := make([]*stm.VBox[int], 8)
	for i := range boxes {
		boxes[i] = stm.NewVBox(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Atomic(func(tx *stm.Tx) error {
			return tx.Parallel(
				func(c *stm.Tx) error { boxes[0].Put(c, boxes[0].Get(c)+1); return nil },
				func(c *stm.Tx) error { boxes[4].Put(c, boxes[4].Get(c)+1); return nil },
			)
		})
	}
}

func BenchmarkM5Train30Samples(b *testing.B) {
	rng := stats.NewRNG(0x3555)
	w := surface.TPCC("med")
	sp := space.New(w.Cores)
	data := make([]m5.Instance, 30)
	for i := range data {
		cfg := sp.At(rng.Intn(sp.Size()))
		data[i] = m5.Instance{X: smbo.Features(cfg), Y: w.Measure(cfg, rng)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m5.Train(data, m5.DefaultOptions())
	}
}

func BenchmarkEnsembleFitAndSuggest(b *testing.B) {
	// The per-observation cost of the SMBO loop: retrain the 10-member bag
	// and scan the space with EI — this is the online overhead the paper
	// bounds in §VII-E.
	rng := stats.NewRNG(0xE15)
	w := surface.TPCC("med")
	sp := space.New(w.Cores)
	var obs []smbo.Observation
	explored := map[space.Config]bool{}
	for _, cfg := range sp.BiasedSample(9) {
		obs = append(obs, smbo.Observation{Cfg: cfg, KPI: w.Measure(cfg, rng)})
		explored[cfg] = true
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sur := smbo.Fit(obs, smbo.DefaultEnsembleSize, rng, nil)
		_, _ = smbo.SuggestEI(sp, sur, explored, 500)
	}
}

func BenchmarkMonitorWindowSim(b *testing.B) {
	w := surface.TPCC("med")
	sim := simcore.New(w, 0x517, simcore.Options{})
	sim.Apply(space.Config{T: 20, C: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.MeasureWindow(simcore.AdaptiveCV{}.Make(100))
	}
}
