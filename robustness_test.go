package autopn_test

import (
	"context"
	"errors"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"autopn"
	"autopn/internal/obs"
	"autopn/pnstm"
)

// TestChaosTunerSelfProtection drives the full self-protection loop end to
// end on a live surface: a workload with two pathological configurations —
// one that starves completely (zero commits, caught by the zero-commit gap
// timeout) and one that trickles jittery commits forever (defeats both the
// gap timeout and the CV criterion, caught only by the watchdog) — must be
// quarantined, trigger fallback to the last known-good configuration, and
// still let the tuner converge to a sane optimum, with the whole trail in
// the decision log.
func TestChaosTunerSelfProtection(t *testing.T) {
	if testing.Short() {
		t.Skip("long-running live-tuning test")
	}

	var (
		poisonStarve  = autopn.Config{T: 4, C: 1} // workers refuse to commit
		poisonTrickle = autopn.Config{T: 1, C: 4} // jittery trickle defeats CV + gap
	)

	ring := obs.NewRing(512)
	rec := obs.Recorder(ring)
	if path := os.Getenv("CHAOS_LOG"); path != "" {
		f, err := obs.NewJSONLFile(path, 0)
		if err != nil {
			t.Fatalf("CHAOS_LOG: %v", err)
		}
		defer f.Close()
		rec = obs.Multi{ring, f}
	}

	s := pnstm.New(pnstm.Options{})
	opts := autopn.Options{
		Cores:             4,
		Seed:              7,
		CVThreshold:       0.04,
		MaxWindow:         400 * time.Millisecond,
		WatchdogFactor:    11, // 11 × 1/T(1,1) < 100ms production floor → budget pinned at ~100ms
		WatchdogMinBudget: 0,  // disarmed until T(1,1) is known
		QuarantineAfter:   1,
		Recorder:          rec,
		OnMeasurement: func(cfg autopn.Config, m autopn.Measurement) {
			t.Logf("window %v: tput=%.0f commits=%d elapsed=%v cv=%.3f timedOut=%v watchdog=%v",
				cfg, m.Throughput, m.Commits, m.Elapsed, m.CV, m.TimedOut, m.WatchdogTripped)
		},
	}
	tuner := autopn.NewTuner(s, opts)

	// Workload: every normal transaction carries ~8ms of work, anchoring
	// T(1,1) ≈ 115 commits/s and therefore the adaptive gap ≈ 8.7ms — wide
	// enough that the trickle poison's ~3.5ms effective slow gaps cannot
	// trip it even under single-P scheduling spikes (≈5ms of headroom).
	const workers = 6
	var (
		stop atomic.Bool
		// trickleSince is when the trickle poison was last observed being
		// enforced (unix nanos; 0 = not current): its phase schedule is
		// keyed off this so every probe of the poison replays the same
		// nonstationary shape from the window's point of view.
		trickleSince atomic.Int64
		osc          atomic.Uint64 // alternates the jitter phase's gap length
		wg           sync.WaitGroup
		boxes        [workers]*pnstm.VBox[int]
	)
	errSkip := errors.New("poisoned: refuse to commit")
	for i := range boxes {
		boxes[i] = pnstm.NewVBox(0)
	}
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for !stop.Load() {
				if tuner.Current() == poisonStarve {
					// Refuse to submit any work while the starving
					// configuration is enforced.
					time.Sleep(500 * time.Microsecond)
					continue
				}
				_ = s.Atomic(func(tx *pnstm.Tx) error {
					v := boxes[i].Get(tx)
					d := 8 * time.Millisecond
					if tuner.Current() == poisonTrickle {
						// Nonstationary trickle, phase-keyed to when the
						// poison was applied: ~20ms of alternating
						// fast/slow gaps (the window's first samples have
						// untrustably high spread, so it cannot close at
						// MinCommits), then ~30ms of fast commits (the
						// cumulative estimate T(i) = i/time(i) climbs),
						// then slow commits forever (it decays again).
						// Every gap stays well inside the adaptive gap
						// timeout, and the window's cumulative estimates
						// span so wide a range that their CV stays above
						// the threshold past the watchdog budget — a
						// stationary trickle fails here: the estimates
						// converge and the CV decays through the
						// threshold first. Only the watchdog can end this
						// window.
						now := time.Now().UnixNano()
						since := trickleSince.Load()
						if since == 0 {
							trickleSince.CompareAndSwap(0, now)
							since = trickleSince.Load()
						}
						switch tau := time.Duration(now - since); {
						case tau < 20*time.Millisecond:
							if osc.Add(1)%2 == 0 {
								d = 300 * time.Microsecond
							} else {
								d = 2800 * time.Microsecond
							}
						case tau < 50*time.Millisecond:
							d = 300 * time.Microsecond
						case tau < 58*time.Millisecond:
							// Soften the fast→slow transition so no single
							// step risks tripping the adaptive gap timeout.
							d = 1500 * time.Microsecond
						default:
							d = 2800 * time.Microsecond
						}
					} else {
						trickleSince.Store(0)
					}
					time.Sleep(d)
					if tuner.Current() == poisonStarve {
						// A transaction in flight when the starving config
						// was applied must not commit into its window.
						return errSkip
					}
					boxes[i].Put(tx, v+1)
					return nil
				})
			}
		}(i)
	}
	defer func() {
		stop.Store(true)
		wg.Wait()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	res := tuner.Run(ctx)
	if ctx.Err() != nil {
		t.Fatal("tuner did not converge within the deadline")
	}

	// Both poisons quarantined; the trickle poison specifically needed the
	// watchdog.
	prot := tuner.Protection()
	banned := make(map[autopn.Config]bool, len(prot.Quarantined))
	for _, cfg := range prot.Quarantined {
		banned[cfg] = true
	}
	if !banned[poisonStarve] {
		t.Errorf("starving config %v not quarantined (banned: %v)", poisonStarve, prot.Quarantined)
	}
	if !banned[poisonTrickle] {
		t.Errorf("trickling config %v not quarantined (banned: %v)", poisonTrickle, prot.Quarantined)
	}
	if prot.WatchdogTrips < 1 {
		t.Error("watchdog never tripped despite the trickle poison")
	}
	if prot.LastGood == nil {
		t.Error("no last known-good configuration recorded")
	}

	// The converged best is sane and not a poison.
	if res.Best == poisonStarve || res.Best == poisonTrickle {
		t.Errorf("converged to a poisoned configuration %v", res.Best)
	}
	if res.Best.T < 1 || res.Best.C < 1 || res.Best.T*res.Best.C > opts.Cores {
		t.Errorf("invalid best config %v", res.Best)
	}
	if got := tuner.Current(); got == poisonStarve || got == poisonTrickle {
		t.Errorf("actuator left enforcing a poisoned configuration %v", got)
	}

	// The whole protection trail is in the decision log: at least one
	// quarantine (one of them watchdog-attributed), one fallback, and a
	// watchdog-marked measurement.
	var quarantines, fallbacks, wdQuarantines, wdMeasurements int
	for _, d := range ring.Last(512) {
		switch d.Kind {
		case obs.KindQuarantine:
			quarantines++
			if d.Watchdog {
				wdQuarantines++
			}
		case obs.KindFallback:
			fallbacks++
		case obs.KindMeasurement:
			if d.Watchdog {
				wdMeasurements++
			}
		}
	}
	if quarantines < 2 {
		t.Errorf("decision log has %d quarantine records, want >= 2", quarantines)
	}
	if wdQuarantines < 1 {
		t.Error("no watchdog-attributed quarantine in the decision log")
	}
	if fallbacks < 1 {
		t.Error("no fallback record in the decision log")
	}
	if wdMeasurements < 1 {
		t.Error("no watchdog-marked measurement in the decision log")
	}
	t.Logf("converged to %v (%.0f commits/s); quarantined %v; %d watchdog trips; %d fallbacks",
		res.Best, res.BestThroughput, prot.Quarantined, prot.WatchdogTrips, fallbacks)
}
