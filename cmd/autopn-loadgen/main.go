// Command autopn-loadgen drives an autopn-server with open-loop load:
// arrivals follow a fixed schedule regardless of response latency (so
// offered load can exceed capacity and exercise the server's shedding),
// keys are drawn with zipfian skew, and the read/write/multi-key mix is
// configurable. The run report — p50/p95/p99 latency over accepted
// requests, goodput, shed rate, and a latency histogram — is printed as
// JSON and optionally written to -out (the CI artifact).
//
//	autopn-loadgen -addr 127.0.0.1:7400 -rate 20000 -duration 10s \
//	  -zipf 1.2 -read-frac 0.5 -shards 4 -out report.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"autopn/internal/server/loadgen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "autopn-loadgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("autopn-loadgen", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:7400", "server address")
		rate     = fs.Float64("rate", 10000, "open-loop arrival rate, requests/second")
		duration = fs.Duration("duration", 10*time.Second, "how long to generate arrivals")
		conns    = fs.Int("conns", 8, "connection pool size")
		inflight = fs.Int("max-inflight", 4096, "outstanding-request bound; arrivals past it are dropped client-side")

		keys     = fs.Int("keys", 16384, "addressed key-space size (must not exceed the server's)")
		zipfS    = fs.Float64("zipf", 1.1, "zipfian skew exponent (<= 1 selects uniform keys)")
		readFrac = fs.Float64("read-frac", 0.5, "fraction of GET requests")
		maddFrac = fs.Float64("madd-frac", 0.2, "fraction of writes issued as multi-key MADD transactions")
		maddKeys = fs.Int("madd-keys", 4, "keys per MADD transaction")
		shards   = fs.Int("shards", 0, "server shard count, for client-side MADD colocation (0 disables MADD)")
		vnodes   = fs.Int("vnodes", 0, "server virtual nodes per shard (0 = default; must match the server)")
		hotKeys  = fs.Int("hot-keys", 0, "concentrate write traffic on the first N keys (0 = off)")
		hotFrac  = fs.Float64("hot-frac", 0, "fraction of write traffic aimed at the -hot-keys hot set (0 = default 0.9)")

		seed       = fs.Uint64("seed", 1, "workload stream seed")
		verify     = fs.String("verify", "", "journal acked writes to this ledger file during the run (crash-recovery verification)")
		audit      = fs.String("audit", "", "skip the load run; sweep the server against this acked-write ledger and report lost acks")
		out        = fs.String("out", "", "also write the JSON report to this file")
		traceEvery = fs.Int("trace-every", 0, "send a trace hint on every Nth request (0 = none; needs server-side tracing on)")
		statusURL  = fs.String("status-url", "", "server /status URL; the report embeds its stage breakdown after the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *audit != "" {
		// Audit mode: no load, just the post-restart GET sweep against the
		// ledger. A non-zero lost-ack count is a process failure — this is
		// what the recovery-e2e gate runs.
		arep, err := loadgen.Audit(*addr, *audit)
		if err != nil {
			return err
		}
		b, err := json.MarshalIndent(arep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(b))
		if *out != "" {
			if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
				return fmt.Errorf("write report: %w", err)
			}
		}
		if arep.LostAcks > 0 {
			return fmt.Errorf("audit: %d acked writes lost", arep.LostAcks)
		}
		return nil
	}

	rep, err := loadgen.Run(ctx, loadgen.Options{
		Addr:         *addr,
		Rate:         *rate,
		Duration:     *duration,
		Conns:        *conns,
		MaxInFlight:  *inflight,
		Keys:         *keys,
		ZipfS:        *zipfS,
		ReadFrac:     *readFrac,
		MAddFrac:     *maddFrac,
		MAddKeys:     *maddKeys,
		HotKeys:      *hotKeys,
		HotFrac:      *hotFrac,
		Shards:       *shards,
		VNodes:       *vnodes,
		Seed:         *seed,
		TraceEvery:   *traceEvery,
		StatusURL:    *statusURL,
		VerifyLedger: *verify,
	})
	if err != nil {
		return err
	}

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(b))
	if *out != "" {
		if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
			return fmt.Errorf("write report: %w", err)
		}
	}
	return nil
}
