// Command autopn-live runs one of the ported benchmarks (Array, Vacation,
// TPC-C) live on the real PN-STM with the AutoPN tuner attached, printing
// the tuning trajectory and the final configuration. This exercises the
// full production path — actuator semaphores, commit-hook monitoring,
// online model training — on the host machine's cores.
//
// Usage:
//
//	autopn-live -workload array -writes 0.5 -cores 8 -duration 10s
//	autopn-live -workload tpcc -level med -strategy autopn
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"autopn"
	"autopn/internal/stm"
	"autopn/internal/workload"
	"autopn/internal/workload/array"
	"autopn/internal/workload/tpcc"
	"autopn/internal/workload/vacation"
)

func main() {
	var (
		wl       = flag.String("workload", "array", "array | vacation | tpcc")
		level    = flag.String("level", "med", "contention level for vacation/tpcc (low|med|high)")
		writes   = flag.Float64("writes", 0.1, "write fraction for array (0..1)")
		size     = flag.Int("size", 1024, "array size")
		cores    = flag.Int("cores", runtime.NumCPU(), "core budget n (t*c <= n)")
		duration = flag.Duration("duration", 15*time.Second, "total run duration")
		strategy = flag.String("strategy", "autopn", "autopn | random | grid | hillclimb | annealing | genetic")
		seed     = flag.Uint64("seed", 1, "seed")
		retune   = flag.Bool("retune", false, "keep watching for workload changes (CUSUM)")
		verbose  = flag.Bool("v", false, "print every measurement window")
		lockfree = flag.Bool("lockfree", false, "use JVSTM's lock-free commit algorithm")
	)
	flag.Parse()

	s := stm.New(stm.Options{LockFreeCommit: *lockfree})
	var w workload.Workload
	switch *wl {
	case "array":
		w = array.New(*size, *writes)
	case "vacation":
		w = vacation.New(*level, s)
	case "tpcc":
		w = tpcc.New(*level, s)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(2)
	}

	strat := map[string]autopn.Strategy{
		"autopn": autopn.StrategyAutoPN, "random": autopn.StrategyRandom,
		"grid": autopn.StrategyGrid, "hillclimb": autopn.StrategyHillClimb,
		"annealing": autopn.StrategyAnnealing, "genetic": autopn.StrategyGenetic,
	}[*strategy]

	opts := autopn.Options{
		Cores:     *cores,
		Strategy:  strat,
		Seed:      *seed,
		MaxWindow: 2 * time.Second,
		ReTune:    *retune,
	}
	if *verbose {
		opts.OnMeasurement = func(cfg autopn.Config, m autopn.Measurement) {
			suffix := ""
			if m.TimedOut {
				suffix = " (timed out)"
			}
			fmt.Printf("  measured %v: %.0f commits/s over %v%s\n",
				cfg, m.Throughput, m.Elapsed.Round(time.Millisecond), suffix)
		}
	}
	tuner := autopn.NewTuner(s, opts)

	d := &workload.Driver{
		STM:        s,
		W:          w,
		Threads:    *cores,
		NestedHint: func() int { return tuner.Current().C },
	}
	d.Start(*seed)
	defer d.Stop()

	fmt.Printf("running %s on %d cores with strategy %s (space: %d configs)\n",
		w.Name(), *cores, *strategy, tuner.SpaceSize())

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	res := tuner.Run(ctx)

	fmt.Printf("converged to %v after %d explorations (%d windows) in %v\n",
		res.Best, res.Explorations, res.Windows, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("measured throughput at best: %.0f commits/s\n", res.BestThroughput)
	if *retune {
		fmt.Printf("re-tunes triggered: %d\n", res.Retunes)
	}
	snap := s.Stats.Snapshot()
	fmt.Printf("stm: %d top commits (%d read-only), %d top aborts, %d nested commits, %d nested aborts\n",
		snap.TopCommits, snap.ReadOnlyTops, snap.TopAborts, snap.NestedCommits, snap.NestedAborts)
}
