// Command autopn-live runs one of the ported benchmarks (Array, Vacation,
// TPC-C) live on the real PN-STM with the AutoPN tuner attached, printing
// the tuning trajectory and the final configuration. This exercises the
// full production path — actuator semaphores, commit-hook monitoring,
// online model training — on the host machine's cores.
//
// With -http it additionally serves the tuner's introspection surface
// (Prometheus /metrics, JSON /status with the current configuration,
// phase and recent decisions, and /debug/pprof), and with -decision-log it
// persists every tuning decision as JSONL, size-rotated past
// -decision-log-max-mb; see docs/OBSERVABILITY.md. With -trace-sample it
// traces that fraction of transactions through the STM's conflict
// profiler: /debug/stm/conflicts reports abort reasons and the hottest
// boxes, /debug/stm/trace (and -trace-out on exit) exports the sampled
// spans as Chrome trace_event JSON for Perfetto. SIGINT/SIGTERM trigger a
// graceful shutdown that flushes the decision log and prints the final
// metrics snapshot before exiting.
//
// Usage:
//
//	autopn-live -workload array -writes 0.5 -cores 8 -duration 10s
//	autopn-live -workload tpcc -level med -strategy autopn
//	autopn-live -http :6060 -decision-log decisions.jsonl -retune
//	autopn-live -trace-sample 0.01 -trace-out trace.json -http :6060
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	var cfg liveConfig
	flag.StringVar(&cfg.workload, "workload", "array", "array | vacation | tpcc")
	flag.StringVar(&cfg.level, "level", "med", "contention level for vacation/tpcc (low|med|high)")
	flag.Float64Var(&cfg.writes, "writes", 0.1, "write fraction for array (0..1)")
	flag.IntVar(&cfg.size, "size", 1024, "array size")
	flag.IntVar(&cfg.cores, "cores", defaultCores(), "core budget n (t*c <= n)")
	flag.DurationVar(&cfg.duration, "duration", 15*time.Second, "total run duration")
	flag.StringVar(&cfg.strategy, "strategy", "autopn", "autopn | random | grid | hillclimb | annealing | genetic")
	flag.Uint64Var(&cfg.seed, "seed", 1, "seed")
	flag.BoolVar(&cfg.retune, "retune", false, "keep watching for workload changes (CUSUM)")
	flag.BoolVar(&cfg.verbose, "v", false, "print every measurement window")
	flag.BoolVar(&cfg.lockfree, "lockfree", false, "use JVSTM's lock-free commit algorithm")
	flag.DurationVar(&cfg.maxWindow, "max-window", 2*time.Second, "bound on any single measurement window")
	flag.StringVar(&cfg.httpAddr, "http", "", "serve /metrics, /status and /debug/pprof on this address (e.g. :6060)")
	flag.StringVar(&cfg.decisionLog, "decision-log", "", "write the JSONL decision log to this file")
	flag.IntVar(&cfg.logMaxMB, "decision-log-max-mb", 64, "rotate the decision log past this size (0 = never)")
	flag.Float64Var(&cfg.traceSample, "trace-sample", 0, "fraction of transactions to trace (0..1; 0 = off)")
	flag.StringVar(&cfg.traceOut, "trace-out", "", "write sampled spans as Chrome trace_event JSON to this file on exit")
	flag.DurationVar(&cfg.shutdownTimeout, "shutdown-timeout", 5*time.Second, "bound on draining in-flight transactions at shutdown (0 = wait forever)")
	flag.Parse()

	// A graceful-shutdown context: the first SIGINT/SIGTERM cancels the
	// run (the tuner notices within one measurement window and the final
	// flush still happens); a second signal kills the process the default
	// way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		// Restore default signal behavior once cancelled, so a second
		// signal terminates immediately instead of being swallowed.
		<-ctx.Done()
		stop()
	}()

	if err := newLiveRun(cfg, os.Stdout).run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
