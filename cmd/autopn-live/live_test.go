package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"autopn/internal/obs"
	stmtrace "autopn/internal/stm/trace"
)

// TestLiveEndToEnd runs the full command path — real STM, real workload
// driver, AutoPN strategy — with the HTTP introspection server, the JSONL
// decision log and full transaction tracing enabled, and asserts that (a)
// /metrics, /status and the /debug/stm endpoints serve live data while the
// run is in flight, (b) the persisted decision log parses and covers all
// three tuning phases, and (c) the trace_event dump written on exit parses
// and carries spans.
func TestLiveEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("live timing test")
	}
	dir := t.TempDir()
	logPath := filepath.Join(dir, "decisions.jsonl")
	tracePath := filepath.Join(dir, "trace.json")
	cfg := liveConfig{
		workload: "array",
		writes:   0.1,
		size:     256,
		// 6 logical cores gives a 14-config space, larger than the 9
		// initial samples, so the SMBO phase genuinely runs before
		// hill-climbing (all three phases appear in the log).
		cores: 6,
		// With -retune the run lasts exactly -duration (the change watcher
		// keeps it alive after convergence), so the mid-run endpoint probes
		// below never race a fast convergence ending the run — and the
		// HTTP server with it — from under them.
		duration:    2 * time.Second,
		retune:      true,
		strategy:    "autopn",
		seed:        1,
		maxWindow:   80 * time.Millisecond,
		httpAddr:    "127.0.0.1:0",
		decisionLog: logPath,
		logMaxMB:    64,
		traceSample: 1,
		traceOut:    tracePath,
	}
	var out bytes.Buffer
	r := newLiveRun(cfg, &out)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errCh := make(chan error, 1)
	go func() { errCh <- r.run(ctx) }()

	// Wait for the introspection server to come up.
	var addr string
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if addr = r.HTTPAddr(); addr != "" {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("HTTP server never came up")
	}

	get := func(path string) (int, string) {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	// /metrics serves the full catalogue: STM bridge, monitor windows,
	// tuner gauges.
	code, metrics := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"autopn_stm_top_commits_total",
		"autopn_monitor_windows_total",
		"autopn_monitor_window_aborts",
		"autopn_tuner_current_t",
		"autopn_tuner_space_size 14",
		"autopn_stm_trace_sampled_total",
		"autopn_stm_trace_aborts_top_validation_total",
		"autopn_stm_phase_commit_seconds_count",
		"autopn_stm_preval_aborts_total",
		"autopn_stm_commit_inline_total",
		"autopn_stm_commit_combined_total",
		"autopn_stm_commit_batch_size_count",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// /status serves the tuner's live view.
	code, body := get("/status")
	if code != http.StatusOK {
		t.Fatalf("/status status %d", code)
	}
	var st statusPayload
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/status does not parse: %v\n%s", err, body)
	}
	if st.Workload == "" || st.Phase == "" || st.T < 1 || st.C < 1 {
		t.Errorf("implausible /status: %+v", st)
	}
	if st.SpaceSize != 14 {
		t.Errorf("/status space_size = %d, want 14", st.SpaceSize)
	}
	// The commit-batch histogram is attached by stm.New, so the section is
	// always present even if every commit took the inline fast path.
	if st.CommitBatchSize == nil {
		t.Error("/status has no commit_batch_size section")
	}
	// The memory section always carries a live runtime heap picture; a
	// running process has allocated something.
	if st.Memory.HeapAllocBytes == 0 || st.Memory.Mallocs == 0 {
		t.Errorf("implausible /status memory section: %+v", st.Memory)
	}

	if st.Contention == nil {
		t.Error("/status has no contention section with tracing on")
	} else if st.Contention.SampledTx == 0 {
		t.Error("/status contention sampled no transactions at rate 1")
	}

	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", code)
	}

	// The tracing endpoints serve parseable reports while the run is live.
	code, body = get("/debug/stm/conflicts")
	if code != http.StatusOK {
		t.Fatalf("/debug/stm/conflicts status %d", code)
	}
	var rep stmtrace.ConflictReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/debug/stm/conflicts does not parse: %v\n%s", err, body)
	}
	if rep.SampledTx == 0 {
		t.Error("/debug/stm/conflicts reports zero sampled transactions at rate 1")
	}
	code, body = get("/debug/stm/trace")
	if code != http.StatusOK {
		t.Fatalf("/debug/stm/trace status %d", code)
	}
	var live struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &live); err != nil {
		t.Fatalf("/debug/stm/trace does not parse: %v", err)
	}
	if len(live.TraceEvents) == 0 {
		t.Error("/debug/stm/trace served no events at sample rate 1")
	}

	// Let the run finish on its own (the -duration timeout ends it).
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("run: %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not finish")
	}

	// The persisted decision log must be strict JSONL, sequence-numbered,
	// and cover all three tuning phases plus the final apply.
	f, err := os.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	phases := map[string]int{}
	kinds := map[string]int{}
	var lastSeq uint64
	sc := bufio.NewScanner(f)
	lines := 0
	for sc.Scan() {
		lines++
		var d obs.Decision
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("decision log line %d does not parse: %v\n%s", lines, err, sc.Text())
		}
		if d.Seq <= lastSeq {
			t.Errorf("line %d: seq %d not increasing (prev %d)", lines, d.Seq, lastSeq)
		}
		lastSeq = d.Seq
		phases[d.Phase]++
		kinds[d.Kind]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("decision log is empty")
	}
	for _, phase := range []string{"initial-sampling", "smbo", "hill-climbing"} {
		if phases[phase] == 0 {
			t.Errorf("decision log covers no %q decisions (phases: %v)", phase, phases)
		}
	}
	for _, kind := range []string{obs.KindMeasurement, obs.KindSuggestion, obs.KindPhase, obs.KindApply} {
		if kinds[kind] == 0 {
			t.Errorf("decision log has no %q records (kinds: %v)", kind, kinds)
		}
	}
	t.Logf("decision log: %d records, phases %v, kinds %v", lines, phases, kinds)

	// The trace_event dump written on exit parses and carries X events with
	// the pid/tid identity scheme (pid = root span) Perfetto groups by.
	traceBytes, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("trace dump: %v", err)
	}
	var dump struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			PID uint64 `json:"pid"`
			TID uint64 `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceBytes, &dump); err != nil {
		t.Fatalf("trace dump does not parse: %v", err)
	}
	xEvents := 0
	for _, e := range dump.TraceEvents {
		if e.Ph == "X" {
			xEvents++
			if e.PID == 0 || e.TID == 0 {
				t.Errorf("X event with zero pid/tid: %+v", e)
			}
		}
	}
	if xEvents == 0 {
		t.Error("trace dump has no span events")
	}
	t.Logf("trace dump: %d events (%d spans)", len(dump.TraceEvents), xEvents)
	if !strings.Contains(out.String(), "contention (sampled") {
		t.Errorf("final report lacks the contention summary:\n%s", out.String())
	}
}

// TestLiveRejectsBadFlags covers the validation exits.
func TestLiveRejectsBadFlags(t *testing.T) {
	cfg := liveConfig{workload: "nope", cores: 2, duration: time.Second, strategy: "autopn", seed: 1, maxWindow: time.Second}
	if err := newLiveRun(cfg, io.Discard).run(context.Background()); err == nil {
		t.Error("unknown workload accepted")
	}
	cfg = liveConfig{workload: "array", size: 64, cores: 2, duration: time.Second, strategy: "nope", seed: 1, maxWindow: time.Second}
	if err := newLiveRun(cfg, io.Discard).run(context.Background()); err == nil {
		t.Error("unknown strategy accepted")
	}
}
