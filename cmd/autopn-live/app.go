package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"

	"autopn"
	"autopn/internal/obs"
	"autopn/internal/stm"
	stmtrace "autopn/internal/stm/trace"
	"autopn/internal/workload"
	"autopn/internal/workload/array"
	"autopn/internal/workload/tpcc"
	"autopn/internal/workload/vacation"
)

// liveConfig mirrors the command's flags; see main.go for documentation.
type liveConfig struct {
	workload    string
	level       string
	writes      float64
	size        int
	cores       int
	duration    time.Duration
	strategy    string
	seed        uint64
	retune      bool
	verbose     bool
	lockfree    bool
	maxWindow   time.Duration
	httpAddr    string // "" = no HTTP server
	decisionLog string // "" = no persisted decision log
	logMaxMB    int    // decision-log size cap per generation (0 = uncapped)
	traceSample float64
	traceOut    string // "" = no trace_event dump on exit
	// shutdownTimeout bounds how long shutdown waits for in-flight
	// transactions to drain; workers still running past it are abandoned
	// and reported in the exit summary (0 = wait forever).
	shutdownTimeout time.Duration
}

// statusPayload is what /status serves: current configuration, phase, and
// the tail of the decision trail.
type statusPayload struct {
	Workload      string            `json:"workload"`
	Strategy      string            `json:"strategy"`
	Cores         int               `json:"cores"`
	SpaceSize     int               `json:"space_size"`
	Phase         string            `json:"phase"`
	T             int               `json:"t"`
	C             int               `json:"c"`
	UptimeSeconds float64           `json:"uptime_seconds"`
	STM           stm.StatsSnapshot `json:"stm"`
	// CommitBatchSize summarizes the flat-combining batch-size histogram
	// (how many queued commits each combiner drain chunk installed); nil
	// when the STM predates the group-commit pipeline or it never ran.
	CommitBatchSize *obs.HistogramSnapshot `json:"commit_batch_size,omitempty"`
	// Protection is the tuner's self-protection state: watchdog trips,
	// quarantined configurations, and the fallback target.
	Protection autopn.Protection `json:"protection"`
	// Contention is the tracer's conflict-attribution report (nil unless
	// -trace-sample is on).
	Contention *stmtrace.ConflictReport `json:"contention,omitempty"`
	// Memory pairs the Go runtime's heap picture with the STM's
	// version-record pool counters, so a live run shows whether the
	// pooled write path is holding (pool hits climbing, mallocs flat).
	Memory    memoryStatus   `json:"memory"`
	Decisions []obs.Decision `json:"recent_decisions"`
}

// memoryStatus is the /status "memory" section.
type memoryStatus struct {
	HeapAllocBytes  uint64  `json:"heap_alloc_bytes"`
	HeapObjects     uint64  `json:"heap_objects"`
	TotalAllocBytes uint64  `json:"total_alloc_bytes"`
	Mallocs         uint64  `json:"mallocs"`
	NumGC           uint32  `json:"num_gc"`
	GCPauseTotalMs  float64 `json:"gc_pause_total_ms"`
	// Version-record pool counters (duplicated from the stm section for
	// one-stop memory triage; see internal/stm/bodypool.go).
	BodyPoolHits   uint64 `json:"body_pool_hits"`
	BodyPoolMisses uint64 `json:"body_pool_misses"`
	BodyRetired    uint64 `json:"body_retired"`
}

// readMemoryStatus samples runtime.MemStats and folds in the STM pool
// counters from an already-taken stats snapshot.
func readMemoryStatus(snap stm.StatsSnapshot) memoryStatus {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return memoryStatus{
		HeapAllocBytes:  ms.HeapAlloc,
		HeapObjects:     ms.HeapObjects,
		TotalAllocBytes: ms.TotalAlloc,
		Mallocs:         ms.Mallocs,
		NumGC:           ms.NumGC,
		GCPauseTotalMs:  float64(ms.PauseTotalNs) / 1e6,
		BodyPoolHits:    snap.BodyPoolHits,
		BodyPoolMisses:  snap.BodyPoolMisses,
		BodyRetired:     snap.BodyRetired,
	}
}

// statusDecisions is how many trailing decisions /status reports.
const statusDecisions = 20

// liveRun is one testable invocation of the command: main wires it to the
// flags and OS signals, the end-to-end test drives it directly.
type liveRun struct {
	cfg liveConfig
	out io.Writer

	mu       sync.Mutex
	httpAddr string // actual listen address once the server is up
}

func newLiveRun(cfg liveConfig, out io.Writer) *liveRun {
	return &liveRun{cfg: cfg, out: out}
}

// HTTPAddr returns the introspection server's actual address ("" until it
// is listening, or when -http is off). Safe for concurrent use.
func (r *liveRun) HTTPAddr() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.httpAddr
}

func (r *liveRun) setHTTPAddr(addr string) {
	r.mu.Lock()
	r.httpAddr = addr
	r.mu.Unlock()
}

// run executes the live tuning session until the optimizer converges (plus
// re-tune watching with -retune) or ctx is cancelled — by the -duration
// timeout or by SIGINT/SIGTERM. On any exit path it flushes the decision
// log and prints the final metrics snapshot, so an interrupted run still
// leaves a complete, parseable trail behind.
func (r *liveRun) run(ctx context.Context) error {
	cfg := r.cfg
	// The tracer exists whenever anything could consume it (sampling on, or
	// a trace dump requested); with -trace-sample 0 it stays idle and the
	// STM hot path pays only the disabled gate.
	var tracer *stmtrace.Tracer
	if cfg.traceSample > 0 || cfg.traceOut != "" {
		tracer = stmtrace.New(stmtrace.Options{})
	}
	s := stm.New(stm.Options{
		LockFreeCommit:  cfg.lockfree,
		Tracer:          tracer,
		TraceSampleRate: cfg.traceSample,
	})
	var w workload.Workload
	switch cfg.workload {
	case "array":
		w = array.New(cfg.size, cfg.writes)
	case "vacation":
		w = vacation.New(cfg.level, s)
	case "tpcc":
		w = tpcc.New(cfg.level, s)
	default:
		return fmt.Errorf("unknown workload %q", cfg.workload)
	}

	strat, ok := map[string]autopn.Strategy{
		"autopn": autopn.StrategyAutoPN, "random": autopn.StrategyRandom,
		"grid": autopn.StrategyGrid, "hillclimb": autopn.StrategyHillClimb,
		"annealing": autopn.StrategyAnnealing, "genetic": autopn.StrategyGenetic,
	}[cfg.strategy]
	if !ok {
		return fmt.Errorf("unknown strategy %q", cfg.strategy)
	}

	// Observability: every run keeps a ring of recent decisions (served by
	// /status) and a metrics registry; -decision-log adds a persistent
	// JSONL recorder.
	reg := obs.NewRegistry()
	ring := obs.NewRing(128)
	recorders := obs.Multi{ring}
	if cfg.decisionLog != "" {
		jsonl, err := obs.NewJSONLFile(cfg.decisionLog, int64(cfg.logMaxMB)<<20)
		if err != nil {
			return fmt.Errorf("decision log: %w", err)
		}
		recorders = append(recorders, jsonl)
		defer func() {
			if err := jsonl.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "decision log: %v\n", err)
			}
		}()
	}

	opts := autopn.Options{
		Cores:     cfg.cores,
		Strategy:  strat,
		Seed:      cfg.seed,
		MaxWindow: cfg.maxWindow,
		ReTune:    cfg.retune,
		Recorder:  recorders,
		Metrics:   reg,
	}
	if cfg.verbose {
		opts.OnMeasurement = func(c autopn.Config, m autopn.Measurement) {
			suffix := ""
			if m.TimedOut {
				suffix = " (timed out)"
			}
			if m.WatchdogTripped {
				suffix = " (watchdog)"
			}
			fmt.Fprintf(r.out, "  measured %v: %.0f commits/s over %v (cv %.2f)%s\n",
				c, m.Throughput, m.Elapsed.Round(time.Millisecond), m.CV, suffix)
		}
	}
	tuner := autopn.NewTuner(s, opts)

	if cfg.httpAddr != "" {
		start := time.Now()
		status := func() any {
			cur := tuner.Current()
			snap := s.Stats.Snapshot()
			p := statusPayload{
				Workload:      w.Name(),
				Strategy:      cfg.strategy,
				Cores:         cfg.cores,
				SpaceSize:     tuner.SpaceSize(),
				Phase:         tuner.Phase(),
				T:             cur.T,
				C:             cur.C,
				UptimeSeconds: time.Since(start).Seconds(),
				STM:           snap,
				Memory:        readMemoryStatus(snap),
				Protection:    tuner.Protection(),
				Decisions:     ring.Last(statusDecisions),
			}
			if h := s.Stats.BatchSizes(); h != nil {
				snap := h.Snapshot()
				p.CommitBatchSize = &snap
			}
			if tracer != nil {
				rep := tracer.Conflicts(statusHotBoxes)
				p.Contention = &rep
			}
			return p
		}
		ln, err := net.Listen("tcp", cfg.httpAddr)
		if err != nil {
			return fmt.Errorf("http: %w", err)
		}
		var extra []obs.Endpoint
		if tracer != nil {
			extra = append(extra,
				obs.Endpoint{
					Path: "/debug/stm/conflicts",
					Desc: "conflict-attribution report (abort reasons, hottest boxes)",
					Handler: http.HandlerFunc(func(rw http.ResponseWriter, _ *http.Request) {
						rw.Header().Set("Content-Type", "application/json")
						enc := json.NewEncoder(rw)
						enc.SetIndent("", "  ")
						_ = enc.Encode(tracer.Conflicts(statusHotBoxes))
					}),
				},
				obs.Endpoint{
					Path: "/debug/stm/trace",
					Desc: "sampled transaction spans as Chrome trace_event JSON (load in Perfetto)",
					Handler: http.HandlerFunc(func(rw http.ResponseWriter, _ *http.Request) {
						rw.Header().Set("Content-Type", "application/json")
						_ = tracer.WriteTraceEvents(rw)
					}),
				},
			)
		}
		srv := &http.Server{Handler: obs.NewHandler(reg, status, extra...)}
		go func() { _ = srv.Serve(ln) }()
		defer func() {
			shutdownCtx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			_ = srv.Shutdown(shutdownCtx)
		}()
		r.setHTTPAddr(ln.Addr().String())
		fmt.Fprintf(r.out, "introspection: http://%s/ (/metrics, /status, /debug/pprof)\n", ln.Addr())
	}

	d := &workload.Driver{
		STM:        s,
		W:          w,
		Threads:    cfg.cores,
		NestedHint: func() int { return tuner.Current().C },
	}
	d.Start(cfg.seed)

	fmt.Fprintf(r.out, "running %s on %d cores with strategy %s (space: %d configs)\n",
		w.Name(), cfg.cores, cfg.strategy, tuner.SpaceSize())

	runCtx, cancel := context.WithTimeout(ctx, cfg.duration)
	defer cancel()
	res := tuner.Run(runCtx)
	if ctx.Err() != nil {
		fmt.Fprintf(r.out, "interrupted — draining in-flight transactions (timeout %v)\n", cfg.shutdownTimeout)
	}

	// Bounded drain: workers finish their in-flight transactions within
	// -shutdown-timeout; whatever is still running past the deadline is
	// abandoned and reported, so a wedged transaction cannot hold the
	// shutdown hostage.
	if abandoned := d.StopTimeout(cfg.shutdownTimeout); abandoned > 0 {
		fmt.Fprintf(r.out, "shutdown: abandoned %d in-flight transactions after %v\n",
			abandoned, cfg.shutdownTimeout)
	} else {
		fmt.Fprintf(r.out, "shutdown: all in-flight transactions drained\n")
	}

	fmt.Fprintf(r.out, "converged to %v after %d explorations (%d windows) in %v\n",
		res.Best, res.Explorations, res.Windows, res.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(r.out, "measured throughput at best: %.0f commits/s\n", res.BestThroughput)
	if cfg.retune {
		fmt.Fprintf(r.out, "re-tunes triggered: %d\n", res.Retunes)
	}
	if prot := tuner.Protection(); prot.WatchdogTrips > 0 || len(prot.Quarantined) > 0 {
		fmt.Fprintf(r.out, "protection: %d watchdog trips, quarantined %v\n",
			prot.WatchdogTrips, prot.Quarantined)
	}
	snap := s.Stats.Snapshot()
	fmt.Fprintf(r.out, "stm: %d top commits (%d read-only), %d top aborts, %d nested commits, %d nested aborts\n",
		snap.TopCommits, snap.ReadOnlyTops, snap.TopAborts, snap.NestedCommits, snap.NestedAborts)
	if tracer != nil {
		printConflictSummary(r.out, tracer)
		if cfg.traceOut != "" {
			f, err := os.Create(cfg.traceOut)
			if err != nil {
				return fmt.Errorf("trace out: %w", err)
			}
			werr := tracer.WriteTraceEvents(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return fmt.Errorf("trace out: %w", werr)
			}
			fmt.Fprintf(r.out, "trace: %d spans written to %s (open in ui.perfetto.dev)\n",
				tracer.SpanCount()-tracer.Dropped(), cfg.traceOut)
		}
	}
	fmt.Fprintf(r.out, "final metrics snapshot:\n")
	if err := reg.WritePrometheus(r.out); err != nil {
		return err
	}
	return nil
}

// statusHotBoxes is how many hot boxes /status and /debug/stm/conflicts
// report.
const statusHotBoxes = 10

// printConflictSummary renders the tracer's contention picture in the
// final report: sampled coverage, abort reasons, hottest boxes.
func printConflictSummary(out io.Writer, tracer *stmtrace.Tracer) {
	rep := tracer.Conflicts(3)
	fmt.Fprintf(out, "contention (sampled %d tx, %d spans", rep.SampledTx, rep.Spans)
	if rep.DroppedSpans > 0 {
		fmt.Fprintf(out, ", %d dropped", rep.DroppedSpans)
	}
	fmt.Fprintf(out, "):\n")
	if len(rep.Reasons) == 0 {
		fmt.Fprintf(out, "  no aborts sampled\n")
		return
	}
	for _, reason := range []stmtrace.Reason{
		stmtrace.ReasonTopValidation, stmtrace.ReasonLockFreeHelp,
		stmtrace.ReasonNestedParent, stmtrace.ReasonNestedSibling,
		stmtrace.ReasonUser,
	} {
		if n := rep.Reasons[reason.String()]; n > 0 {
			fmt.Fprintf(out, "  %-22s %d\n", reason.String(), n)
		}
	}
	for _, box := range rep.TopBoxes {
		fmt.Fprintf(out, "  hot box %s: %d aborts\n", box.Box, box.Aborts)
	}
	if rep.OtherBoxAborts > 0 {
		fmt.Fprintf(out, "  other boxes: %d aborts\n", rep.OtherBoxAborts)
	}
}

// defaultCores is the flag default, split out so main and the tests agree.
func defaultCores() int { return runtime.NumCPU() }
