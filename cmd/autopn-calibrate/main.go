// Command autopn-calibrate closes the loop between the live PN-STM and the
// simulator: it sweeps a real workload over the full (t, c) space of a
// small core budget on this host, fits the analytic workload model to the
// measurements (internal/surface.Fit), and reports the calibrated
// parameters together with the model's extrapolated optimum at the paper's
// 48-core scale.
//
//	autopn-calibrate -workload array -cores 4 -window 150ms
package main

import (
	"flag"
	"fmt"
	"runtime"
	"time"

	"autopn/internal/experiment"
	"autopn/internal/space"
	"autopn/internal/surface"
)

func main() {
	var (
		wl     = flag.String("workload", "array", "array | tpcc")
		cores  = flag.Int("cores", 4, "core budget for the live sweep")
		window = flag.Duration("window", 150*time.Millisecond, "measurement window per configuration")
		seed   = flag.Uint64("seed", 1, "seed")
	)
	flag.Parse()

	if host := runtime.NumCPU(); host < *cores {
		fmt.Printf("warning: sweeping %d logical threads on %d host core(s); "+
			"the measured surface reflects oversubscription, not parallel speedup, "+
			"so the calibrated model is only meaningful on hosts with >= %d cores\n",
			*cores, host, *cores)
	}
	fmt.Printf("sweeping live %s over %d configurations on this host...\n",
		*wl, space.New(*cores).Size())
	points := experiment.LiveSweep(*wl, *cores, *window, *seed)

	samples := make([]surface.Sample, 0, len(points))
	for _, p := range points {
		fmt.Printf("  %v\t%.0f commits/s\n", p.Cfg, p.Throughput)
		samples = append(samples, surface.Sample{Cfg: p.Cfg, Throughput: p.Throughput})
	}

	// Template: start from the matching preset, sized to the sweep's core
	// budget, and let Fit tune the shape parameters. Work volume is
	// anchored by the sequential sample.
	var template *surface.Workload
	if *wl == "tpcc" {
		template = surface.TPCC("med")
	} else {
		template = surface.Array("0.01")
	}
	template.Cores = *cores
	if seq := samples[0].Throughput; seq > 0 {
		// Scale the per-transaction work so the model's (1,1) matches the
		// measured sequential throughput before fitting the shape.
		model := template.Throughput(space.Config{T: 1, C: 1})
		if model > 0 {
			template.BaseUnitTime = time.Duration(float64(template.BaseUnitTime) * model / seq)
		}
	}

	fitted, rms := surface.Fit(template, samples)
	fmt.Printf("\ncalibrated model (RMS log error %.3f):\n", rms)
	fmt.Printf("  SeqFrac   = %.3f\n", fitted.SeqFrac)
	fmt.Printf("  SpawnCost = %v\n", fitted.SpawnCost)
	fmt.Printf("  KInter    = %.2f\n", fitted.KInter)
	fmt.Printf("  KIntra    = %.3f\n", fitted.KIntra)

	big := *fitted
	big.Cores = surface.DefaultCores
	sp48 := space.New(big.Cores)
	opt, tput := big.Optimum(sp48)
	fmt.Printf("\nextrapolated to %d cores: optimum %v at %.0f commits/s (%.1fx the sequential configuration)\n",
		big.Cores, opt, tput, tput/big.Throughput(space.Config{T: 1, C: 1}))
}
