// Command autopn-analyze merges a server run's offline artifacts — the
// per-shard tuning decision logs, the dead-letter log, and a
// /debug/server/trace export — into one chronological human-readable
// timeline: tuner measurements and phase changes interleaved with shed
// bursts and traced requests' stage decompositions, with each measurement
// window annotated by the traced requests that completed inside it.
//
//	autopn-analyze -decisions /tmp/decisions -dlq /tmp/dlq.jsonl \
//	  -trace server-trace.json -out timeline.txt
//
// Every input is optional, but at least one must be given.
package main

import (
	"flag"
	"fmt"
	"os"

	"autopn/internal/analyze"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "autopn-analyze:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("autopn-analyze", flag.ContinueOnError)
	var (
		decisions = fs.String("decisions", "", "decision-log directory (shard-<i>.jsonl files)")
		dlq       = fs.String("dlq", "", "dead-letter log path (JSONL)")
		trace     = fs.String("trace", "", "/debug/server/trace export path (Chrome trace_event JSON)")
		out       = fs.String("out", "", "write the timeline here instead of stdout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *decisions == "" && *dlq == "" && *trace == "" {
		return fmt.Errorf("nothing to analyze: give at least one of -decisions, -dlq, -trace")
	}

	var tl analyze.Timeline
	if *decisions != "" {
		if err := tl.LoadDecisions(*decisions); err != nil {
			return fmt.Errorf("decisions: %w", err)
		}
	}
	if *dlq != "" {
		if err := tl.LoadDLQ(*dlq); err != nil {
			return fmt.Errorf("dlq: %w", err)
		}
	}
	if *trace != "" {
		if err := tl.LoadTrace(*trace); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		w = f
	}
	return tl.Write(w)
}
