// Command autopn-bench regenerates every table and figure of the paper's
// experimental study (§VII). Each experiment prints a plain-text rendering
// of the corresponding figure to stdout; EXPERIMENTS.md records a reference
// run next to the paper's numbers.
//
// Usage:
//
//	autopn-bench -experiment fig5 [-reps 10] [-seed 1]
//	autopn-bench -experiment all
//
// Experiments: fig1a fig1b static fig5 fig6a fig6b fig7a fig7b fig7c
// overhead all.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"autopn/internal/experiment"
	"autopn/internal/surface"
)

func main() {
	var (
		exp    = flag.String("experiment", "all", "experiment id (fig1a, fig1b, static, fig5, fig6a, fig6b, fig7a, fig7b, fig7c, speed, hetero, engines, livesweep, overhead, all)")
		reps   = flag.Int("reps", 10, "repetitions per workload (paper: 10)")
		seed   = flag.Uint64("seed", 1, "master seed")
		outDir = flag.String("out", "", "also write each experiment's output to <out>/<id>.txt")
	)
	flag.Parse()

	run := func(id string) {
		var tee *os.File
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "out dir: %v\n", err)
				os.Exit(1)
			}
			f, err := os.Create(filepath.Join(*outDir, id+".txt"))
			if err != nil {
				fmt.Fprintf(os.Stderr, "out file: %v\n", err)
				os.Exit(1)
			}
			tee = f
			defer f.Close()
			old := os.Stdout
			r, w, _ := os.Pipe()
			os.Stdout = w
			done := make(chan struct{})
			go func() {
				buf := make([]byte, 4096)
				for {
					n, err := r.Read(buf)
					if n > 0 {
						_, _ = old.Write(buf[:n])
						_, _ = tee.Write(buf[:n])
					}
					if err != nil {
						close(done)
						return
					}
				}
			}()
			defer func() {
				w.Close()
				<-done
				os.Stdout = old
			}()
		}
		fmt.Printf("==== %s ====\n", id)
		start := time.Now()
		switch id {
		case "fig1a":
			experiment.RenderFig1(os.Stdout, experiment.Fig1(surface.TPCC("med")))
		case "fig1b":
			experiment.RenderFig1(os.Stdout, experiment.Fig1(surface.Array("90")))
		case "static":
			experiment.RenderStatic(os.Stdout, experiment.StaticBaseline(surface.AllWorkloads()))
		case "fig5":
			cfg := experiment.DefaultFig5Config()
			cfg.Reps = *reps
			cfg.Seed = *seed ^ 0xF165
			experiment.RenderFig5(os.Stdout, experiment.Fig5(cfg))
		case "fig6a":
			cfg := experiment.DefaultFig6Config()
			cfg.Reps = *reps
			cfg.Seed = *seed ^ 0xF166
			experiment.RenderVariants(os.Stdout,
				"Fig.6 (left) — initial sampling policies (SMBO only, EI<10%)",
				experiment.Fig6Sampling(cfg))
		case "fig6b":
			cfg := experiment.DefaultFig6Config()
			cfg.Reps = *reps
			cfg.Seed = *seed ^ 0xF166
			experiment.RenderVariants(os.Stdout,
				"Fig.6 (right) — SMBO stop conditions (SMBO only)",
				experiment.Fig6Stop(cfg))
		case "fig7a":
			experiment.RenderFig7a(os.Stdout, experiment.Fig7a(*reps, *seed^0xF17A))
		case "fig7b":
			experiment.RenderFig7b(os.Stdout, experiment.Fig7b(30*time.Second, *reps, *seed^0xF17B))
		case "fig7c":
			experiment.RenderFig7c(os.Stdout, experiment.Fig7c(*reps, *seed^0xF17C))
		case "speed":
			cfg := experiment.DefaultSpeedConfig()
			cfg.Reps = *reps
			cfg.Seed = *seed ^ 0x5BEED
			fmt.Println("# convergence speed — virtual time to stability (live tuning, adaptive monitor)")
			for _, r := range experiment.Speed(cfg) {
				fmt.Printf("%-20s\t%v\t%.2f%%\t%.0f%%\n",
					r.Name, r.MeanTimeToStability.Round(time.Millisecond), r.MeanFinalDFO*100, r.ConvergedFrac*100)
			}
		case "livesweep":
			fmt.Println("# live sweep — real PN-STM on this host (shape depends on host cores)")
			for _, pt := range experiment.LiveSweep("array", 4, 150*time.Millisecond, *seed) {
				fmt.Printf("%v\t%.0f commits/s\n", pt.Cfg, pt.Throughput)
			}
		case "engines":
			fmt.Println("# cross-engine robustness — live AutoPN on both simulator engines")
			fmt.Printf("%-14s\t%s\t%s\t%s\n", "workload", "renewal-DFO", "thread-DFO", "abort-rate")
			for _, r := range experiment.Engines(*reps, *seed^0xE461) {
				fmt.Printf("%-14s\t%.2f%%\t%.2f%%\t%.0f%%\n",
					r.Workload, r.RenewalDFO*100, r.ThreadDFO*100, r.ThreadAborts*100)
			}
		case "hetero":
			res := experiment.Hetero(*reps, *seed^0x4E7E)
			fmt.Println("# §VIII extension — heterogeneous transaction types (two types, incompatible optima)")
			fmt.Printf("best shared (t,c), oracle:\t%.1f%% from optimum\n", res.SharedDFO*100)
			fmt.Printf("per-type MultiTuner:\t%.1f%% from optimum (%.0f measurements)\n",
				res.PerTypeDFO*100, res.MeanExplorations)
		case "overhead":
			const dur = 2 * time.Second
			experiment.RenderOverhead(os.Stdout, experiment.Overhead(2, dur, *seed), dur)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			os.Exit(2)
		}
		fmt.Printf("(%s took %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, id := range []string{
			"fig1a", "fig1b", "static", "fig5", "fig6a", "fig6b",
			"fig7a", "fig7b", "fig7c", "speed", "hetero", "engines", "livesweep", "overhead",
		} {
			run(id)
		}
		return
	}
	run(*exp)
}
