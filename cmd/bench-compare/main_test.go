package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleBaseline = `{
  "benchmarks": {
    "BenchmarkFast/Seq": {"after": {"ns_op": 100, "b_op": 0, "allocs_op": 0}},
    "BenchmarkSlow/Seq": {"after": {"ns_op": 1000, "b_op": 160, "allocs_op": 7}},
    "BenchmarkGone/Seq": {"after": {"ns_op": 50, "b_op": 0, "allocs_op": 0}}
  }
}`

const sampleRun = `goos: linux
goarch: amd64
pkg: autopn/internal/stm
BenchmarkFast/Seq-8     	10000000	       105.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkSlow/Seq-8     	 1000000	      1300 ns/op	     200 B/op	       9 allocs/op
BenchmarkNew/Seq-8      	 5000000	       250.0 ns/op	       0 B/op	       0 allocs/op
PASS
`

func parseBaseline(t *testing.T) baselineFile {
	t.Helper()
	var b baselineFile
	if err := json.Unmarshal([]byte(sampleBaseline), &b); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestParseBenchStripsProcsSuffix(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleRun))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(results), results)
	}
	if results[0].name != "BenchmarkFast/Seq" || results[0].nsOp != 105 {
		t.Errorf("first result = %+v", results[0])
	}
	if !results[1].hasAlloc || results[1].allocsOp != 9 {
		t.Errorf("allocs not parsed: %+v", results[1])
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleRun))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	violations := compare(&out, results, parseBaseline(t), 15, false)
	report := out.String()

	// Slow regressed 30% (> 15%): one violation. Fast is within 5%: ok.
	if violations != 1 {
		t.Errorf("violations = %d, want 1\n%s", violations, report)
	}
	for _, want := range []string{
		"REGRESSED >15% BenchmarkSlow/Seq",
		"ok        BenchmarkFast/Seq",
		"ALLOCS    BenchmarkSlow/Seq",
		"new       BenchmarkNew/Seq",
		"missing   BenchmarkGone/Seq",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestCompareStrictAllocs(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleRun))
	if err != nil {
		t.Fatal(err)
	}
	// Strict mode also counts the allocs/op increase on Slow.
	if v := compare(&strings.Builder{}, results, parseBaseline(t), 15, true); v != 2 {
		t.Errorf("strict violations = %d, want 2", v)
	}
	// A generous threshold leaves only the alloc violation.
	if v := compare(&strings.Builder{}, results, parseBaseline(t), 50, true); v != 1 {
		t.Errorf("generous-threshold strict violations = %d, want 1", v)
	}
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	run := "BenchmarkFast/Seq-8 1000 101.0 ns/op 0 B/op 0 allocs/op\n" +
		"BenchmarkSlow/Seq-8 1000 1050 ns/op 150 B/op 7 allocs/op\n"
	results, err := parseBench(strings.NewReader(run))
	if err != nil {
		t.Fatal(err)
	}
	if v := compare(&strings.Builder{}, results, parseBaseline(t), 15, true); v != 0 {
		t.Errorf("violations = %d, want 0", v)
	}
}
