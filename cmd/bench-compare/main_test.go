package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleBaseline = `{
  "benchmarks": {
    "BenchmarkFast/Seq": {"after": {"ns_op": 100, "b_op": 0, "allocs_op": 0}},
    "BenchmarkSlow/Seq": {"after": {"ns_op": 1000, "b_op": 160, "allocs_op": 7}},
    "BenchmarkGone/Seq": {"after": {"ns_op": 50, "b_op": 0, "allocs_op": 0}}
  }
}`

const sampleRun = `goos: linux
goarch: amd64
pkg: autopn/internal/stm
BenchmarkFast/Seq-8     	10000000	       105.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkSlow/Seq-8     	 1000000	      1300 ns/op	     200 B/op	       9 allocs/op
BenchmarkNew/Seq-8      	 5000000	       250.0 ns/op	       0 B/op	       0 allocs/op
PASS
`

func parseBaseline(t *testing.T) baselineFile {
	t.Helper()
	var b baselineFile
	if err := json.Unmarshal([]byte(sampleBaseline), &b); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestParseBenchKeepsFullName(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleRun))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(results), results)
	}
	// The -N GOMAXPROCS suffix survives parsing: matching decides later
	// whether to strip it, so -cpu variants stay distinguishable.
	if results[0].name != "BenchmarkFast/Seq-8" || results[0].nsOp != 105 {
		t.Errorf("first result = %+v", results[0])
	}
	if !results[1].hasAlloc || results[1].allocsOp != 9 {
		t.Errorf("allocs not parsed: %+v", results[1])
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleRun))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	violations := compare(&out, results, parseBaseline(t), 15, false)
	report := out.String()

	// Slow regressed 30% (> 15%): one violation. Fast is within 5%: ok.
	// Each run name is the only -N variant of its base, so all fold onto
	// the unsuffixed baseline entries.
	if violations != 1 {
		t.Errorf("violations = %d, want 1\n%s", violations, report)
	}
	for _, want := range []string{
		"REGRESSED >15% BenchmarkSlow/Seq-8",
		"ok        BenchmarkFast/Seq-8",
		"ALLOCS    BenchmarkSlow/Seq-8",
		"skipped   BenchmarkNew/Seq-8",
		"missing   BenchmarkGone/Seq",
		"1 benchmark(s) without a baseline entry were skipped",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestCompareStrictAllocs(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleRun))
	if err != nil {
		t.Fatal(err)
	}
	// Strict mode also counts the allocs/op increase on Slow.
	if v := compare(&strings.Builder{}, results, parseBaseline(t), 15, true); v != 2 {
		t.Errorf("strict violations = %d, want 2", v)
	}
	// A generous threshold leaves only the alloc violation.
	if v := compare(&strings.Builder{}, results, parseBaseline(t), 50, true); v != 1 {
		t.Errorf("generous-threshold strict violations = %d, want 1", v)
	}
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	run := "BenchmarkFast/Seq-8 1000 101.0 ns/op 0 B/op 0 allocs/op\n" +
		"BenchmarkSlow/Seq-8 1000 1050 ns/op 150 B/op 7 allocs/op\n"
	results, err := parseBench(strings.NewReader(run))
	if err != nil {
		t.Fatal(err)
	}
	if v := compare(&strings.Builder{}, results, parseBaseline(t), 15, true); v != 0 {
		t.Errorf("violations = %d, want 0", v)
	}
}

// TestCompareCPUVariants covers a -cpu 1,4 run: Go emits the cpu-1 line
// unsuffixed and the cpu-4 line as Name-4. With exact baseline entries
// both variants pair one-to-one; the stripped-name fallback must never
// fold a -4 line onto the unsuffixed entry.
func TestCompareCPUVariants(t *testing.T) {
	const baseline = `{
	  "benchmarks": {
	    "BenchmarkContended/Disjoint": {"after": {"ns_op": 500, "b_op": 160, "allocs_op": 7}},
	    "BenchmarkContended/Disjoint-4": {"after": {"ns_op": 2500, "b_op": 160, "allocs_op": 7}}
	  }
	}`
	var base baselineFile
	if err := json.Unmarshal([]byte(baseline), &base); err != nil {
		t.Fatal(err)
	}
	run := "BenchmarkContended/Disjoint 10000 520.0 ns/op 160 B/op 7 allocs/op\n" +
		"BenchmarkContended/Disjoint-4 10000 2600 ns/op 160 B/op 7 allocs/op\n"
	results, err := parseBench(strings.NewReader(run))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if v := compare(&out, results, base, 15, true); v != 0 {
		t.Errorf("violations = %d, want 0\n%s", v, out.String())
	}
	report := out.String()
	for _, want := range []string{
		"ok        BenchmarkContended/Disjoint ",
		"ok        BenchmarkContended/Disjoint-4",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	if strings.Contains(report, "missing") || strings.Contains(report, "skipped") {
		t.Errorf("exact -cpu pairing left unmatched entries:\n%s", report)
	}
}

// TestCompareAmbiguousVariantsNotFolded: when the run holds several -cpu
// variants of one base name but the baseline lacks an exact entry for one
// of them, that line is reported as new ("not folding") instead of being
// silently compared against a different CPU count's number.
func TestCompareAmbiguousVariantsNotFolded(t *testing.T) {
	const baseline = `{
	  "benchmarks": {
	    "BenchmarkContended/Disjoint": {"after": {"ns_op": 500, "b_op": 160, "allocs_op": 7}}
	  }
	}`
	var base baselineFile
	if err := json.Unmarshal([]byte(baseline), &base); err != nil {
		t.Fatal(err)
	}
	run := "BenchmarkContended/Disjoint 10000 520.0 ns/op 160 B/op 7 allocs/op\n" +
		"BenchmarkContended/Disjoint-4 10000 9999 ns/op 160 B/op 7 allocs/op\n"
	results, err := parseBench(strings.NewReader(run))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	// The -4 line would be a 20x "regression" against the cpu-1 baseline;
	// refusing to fold keeps violations at zero.
	if v := compare(&out, results, base, 15, true); v != 0 {
		t.Errorf("violations = %d, want 0 (ambiguous variant must not fold)\n%s", v, out.String())
	}
	report := out.String()
	if !strings.Contains(report, "ok        BenchmarkContended/Disjoint ") {
		t.Errorf("exact cpu-1 match missing:\n%s", report)
	}
	if !strings.Contains(report, "not folding") {
		t.Errorf("ambiguous -4 variant not flagged:\n%s", report)
	}
}

// TestCompareRunOnlyKeysNeverViolate: a benchmark present in the run but
// absent from the baseline is skipped with a note — even under
// -strict-allocs, even with terrible numbers — so adding new benchmark
// families (e.g. server benchmarks) can never break the existing gate.
func TestCompareRunOnlyKeysNeverViolate(t *testing.T) {
	run := "BenchmarkServer/Shedding-8 1000 999999 ns/op 4096 B/op 99 allocs/op\n" +
		"BenchmarkServer/Routing-8 1000 888888 ns/op 2048 B/op 50 allocs/op\n" +
		"BenchmarkFast/Seq-8 1000 101.0 ns/op 0 B/op 0 allocs/op\n"
	results, err := parseBench(strings.NewReader(run))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if v := compare(&out, results, parseBaseline(t), 15, true); v != 0 {
		t.Errorf("violations = %d, want 0 (run-only keys must be skipped, not gated)\n%s", v, out.String())
	}
	report := out.String()
	for _, want := range []string{
		"skipped   BenchmarkServer/Shedding-8",
		"skipped   BenchmarkServer/Routing-8",
		"2 benchmark(s) without a baseline entry were skipped",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	// Run-only keys are also exempt from the alloc gate: no ALLOCS callout.
	if strings.Contains(report, "ALLOCS    BenchmarkServer") {
		t.Errorf("run-only key hit the alloc gate:\n%s", report)
	}
}

// TestCompareCountRepeatsStillFold: -count N repeats each benchmark line;
// repeated identical names are still one variant, so the stripped-name
// fallback keeps working.
func TestCompareCountRepeatsStillFold(t *testing.T) {
	run := "BenchmarkFast/Seq-8 1000 101.0 ns/op 0 B/op 0 allocs/op\n" +
		"BenchmarkFast/Seq-8 1000 103.0 ns/op 0 B/op 0 allocs/op\n" +
		"BenchmarkFast/Seq-8 1000 102.0 ns/op 0 B/op 0 allocs/op\n"
	results, err := parseBench(strings.NewReader(run))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if v := compare(&out, results, parseBaseline(t), 15, false); v != 0 {
		t.Errorf("violations = %d, want 0\n%s", v, out.String())
	}
	if strings.Contains(out.String(), "not folding") {
		t.Errorf("-count repeats miscounted as distinct -cpu variants:\n%s", out.String())
	}
}
