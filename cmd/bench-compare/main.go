// Command bench-compare diffs a fresh `go test -bench` run against the
// committed baseline (BENCH_stm.json "after" numbers) and fails when a
// benchmark regressed beyond a threshold — the guardrail that keeps the
// tracing gate (and future hot-path changes) honest about overhead.
//
// Usage:
//
//	go test -bench . -benchmem -run '^$' ./internal/stm/ | \
//	    go run ./cmd/bench-compare -baseline BENCH_stm.json -threshold 15
//
// Benchmark lines are matched to baseline entries by exact name first, so
// baselines may pin specific -cpu variants (BenchmarkFoo/Bar-4). When no
// exact entry exists, the -N GOMAXPROCS suffix is stripped
// (BenchmarkFoo/Bar-8 -> BenchmarkFoo/Bar) and the stripped name is tried —
// but only when the run contains a single variant of that base name. A run
// driven with -cpu 1,4 emits both BenchmarkFoo/Bar and BenchmarkFoo/Bar-4;
// silently folding the -4 line onto an unsuffixed baseline entry would
// compare cross-CPU-count numbers, so ambiguous variants are reported as
// unmatched instead. For each matched benchmark the ns/op ratio against the
// baseline's "after" value is reported; ratios above 1+threshold% fail the
// run (exit 1). Allocations are compared exactly: the hot paths are
// zero-or-counted-alloc by design, so any increase is called out (but
// only fails with -strict-allocs). Benchmarks present in the run but
// absent from the baseline are skipped with a note and exempt from both
// gates — new benchmark families must not break the gate just by
// existing; baseline-only entries are listed as missing. Neither is ever
// fatal — benchmarks come and go across PRs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// baselineFile mirrors the BENCH_stm.json layout.
type baselineFile struct {
	Benchmarks map[string]struct {
		After struct {
			NsOp     float64 `json:"ns_op"`
			BOp      float64 `json:"b_op"`
			AllocsOp float64 `json:"allocs_op"`
		} `json:"after"`
	} `json:"benchmarks"`
}

// result is one parsed benchmark output line.
type result struct {
	name     string
	nsOp     float64
	allocsOp float64
	hasAlloc bool
}

// benchLine matches `go test -bench` output, e.g.
// "BenchmarkFoo/Bar-8  123456  987.6 ns/op  120 B/op  3 allocs/op".
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+\d+\s+([0-9.eE+]+) ns/op(?:\s+([0-9.eE+]+) B/op\s+([0-9.eE+]+) allocs/op)?`)

// stripProcs removes the trailing -N GOMAXPROCS suffix from a benchmark
// name.
func stripProcs(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// parseBench extracts benchmark results from a `go test -bench` stream.
func parseBench(r io.Reader) ([]result, error) {
	var out []result
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		res := result{name: m[1]}
		var err error
		if res.nsOp, err = strconv.ParseFloat(m[2], 64); err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		if m[4] != "" {
			if res.allocsOp, err = strconv.ParseFloat(m[4], 64); err != nil {
				return nil, fmt.Errorf("bad allocs/op in %q: %w", sc.Text(), err)
			}
			res.hasAlloc = true
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

// compare diffs results against the baseline and writes the report to w.
// It returns the number of threshold violations.
func compare(w io.Writer, results []result, base baselineFile, thresholdPct float64, strictAllocs bool) int {
	violations, skipped := 0, 0
	matched := map[string]bool{}
	// How many distinct benchmark names share each stripped base name
	// (-count N repeats lines, so count names, not lines): the
	// procs-stripped fallback below is only sound when the answer is one,
	// otherwise two different -cpu variants would silently pair with the
	// same baseline entry.
	variantNames := map[string]map[string]bool{}
	for _, r := range results {
		sb := stripProcs(r.name)
		if variantNames[sb] == nil {
			variantNames[sb] = map[string]bool{}
		}
		variantNames[sb][r.name] = true
	}
	variants := map[string]int{}
	for sb, names := range variantNames {
		variants[sb] = len(names)
	}
	for _, r := range results {
		key := r.name
		b, ok := base.Benchmarks[key]
		if !ok {
			if sb := stripProcs(r.name); variants[sb] == 1 {
				b, ok = base.Benchmarks[sb]
				key = sb
			}
		}
		if !ok {
			// A benchmark present in the run but absent from the baseline
			// is skipped, never a violation: new benchmark families (the
			// server layer, future subsystems) must not break the existing
			// gate just by existing. It gets a baseline entry when its
			// numbers are intentionally committed.
			skipped++
			if sb := stripProcs(r.name); variants[sb] > 1 {
				fmt.Fprintf(w, "  skipped   %-55s %10.1f ns/op (no exact baseline; %d -cpu variants in run, not folding)\n",
					r.name, r.nsOp, variants[sb])
			} else {
				fmt.Fprintf(w, "  skipped   %-55s %10.1f ns/op (no baseline entry; not compared)\n", r.name, r.nsOp)
			}
			continue
		}
		matched[key] = true
		ratio := r.nsOp / b.After.NsOp
		verdict := "ok"
		if ratio > 1+thresholdPct/100 {
			verdict = fmt.Sprintf("REGRESSED >%g%%", thresholdPct)
			violations++
		} else if ratio < 1-thresholdPct/100 {
			verdict = "improved"
		}
		fmt.Fprintf(w, "  %-9s %-55s %10.1f ns/op vs %10.1f baseline (%+.1f%%)\n",
			verdict, r.name, r.nsOp, b.After.NsOp, (ratio-1)*100)
		if r.hasAlloc && r.allocsOp > b.After.AllocsOp {
			fmt.Fprintf(w, "  ALLOCS    %-55s %10.0f allocs/op vs %10.0f baseline\n",
				r.name, r.allocsOp, b.After.AllocsOp)
			if strictAllocs {
				violations++
			}
		}
	}
	var missing []string
	for name := range base.Benchmarks {
		if !matched[name] {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Fprintf(w, "  missing   %s (in baseline, not in run)\n", name)
	}
	if skipped > 0 {
		fmt.Fprintf(w, "  note: %d benchmark(s) without a baseline entry were skipped, not compared\n", skipped)
	}
	return violations
}

func main() {
	baseline := flag.String("baseline", "BENCH_stm.json", "baseline file (BENCH_stm.json layout)")
	threshold := flag.Float64("threshold", 15, "ns/op regression threshold in percent")
	strictAllocs := flag.Bool("strict-allocs", false, "fail on allocs/op increases too")
	input := flag.String("input", "-", "benchmark output file (- = stdin)")
	flag.Parse()

	bb, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var base baselineFile
	if err := json.Unmarshal(bb, &base); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", *baseline, err)
		os.Exit(2)
	}

	in := io.Reader(os.Stdin)
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	results, err := parseBench(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "no benchmark lines found in input")
		os.Exit(2)
	}

	fmt.Printf("bench-compare: %d results vs %s (threshold %g%%)\n", len(results), *baseline, *threshold)
	violations := compare(os.Stdout, results, base, *threshold, *strictAllocs)
	if violations > 0 {
		fmt.Printf("FAIL: %d benchmark(s) regressed\n", violations)
		os.Exit(1)
	}
	fmt.Println("PASS: no regressions beyond threshold")
}
