// Command autopn-server runs the sharded transactional key/value server:
// N independent PN-STM shards behind consistent-hash routing, a per-shard
// autopn tuner converging its own (t, c), and an admission-control front
// door (bounded queues, load shedding, circuit breakers, dead-letter log).
//
//	autopn-server -addr 127.0.0.1:7400 -http 127.0.0.1:7401 -shards 4 \
//	  -decision-log-dir /tmp/decisions -dlq /tmp/dlq.jsonl
//
// The process serves until SIGINT/SIGTERM, then drains gracefully within
// -shutdown-timeout and flushes every per-shard decision log and the
// dead-letter log before exiting. See docs/SERVER.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"autopn/internal/chaos"
	"autopn/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "autopn-server:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("autopn-server", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:7400", "TCP listen address for the wire protocol")
		httpAddr = fs.String("http", "127.0.0.1:7401", "HTTP listen address for /metrics, /status, /debug/pprof (empty disables)")

		shards = fs.Int("shards", 4, "number of independent STM shards")
		vnodes = fs.Int("vnodes", 0, "consistent-hash virtual nodes per shard (0 = default)")
		keys   = fs.Int("keys", 16384, "preloaded key-space size (keys k000000..)")

		queueDepth = fs.Int("queue-depth", 256, "per-shard admission queue bound; a full queue sheds with ERR overload")
		workers    = fs.Int("workers", 0, "executor goroutines per shard (0 = cores-per-shard)")
		reqTimeout = fs.Duration("request-timeout", time.Second, "per-request deadline from admission to reply")

		brkFailures = fs.Int("breaker-failures", 5, "consecutive failures tripping a shard's circuit breaker")
		brkCooldown = fs.Duration("breaker-cooldown", time.Second, "open-state cooldown before half-open probes")
		brkProbes   = fs.Int("breaker-probes", 1, "half-open probe quota")

		cores     = fs.Int("cores-per-shard", 0, "per-shard tuner core budget n, t*c <= n (0 = NumCPU/shards)")
		noTuner   = fs.Bool("no-tuner", false, "disable the per-shard tuners (fixed full parallelism)")
		maxWindow = fs.Duration("tuner-max-window", time.Second, "per-shard tuner measurement-window bound")
		retune    = fs.Bool("retune", true, "keep tuners watching for workload change after convergence")
		seed      = fs.Uint64("seed", 1, "base tuner seed (shard i uses seed + i*7919)")

		walDir          = fs.String("wal", "", "per-shard durability directory (shard-<i>/ write-ahead logs, snapshots, tuner checkpoints; empty = durability off)")
		walSync         = fs.String("wal-sync", "batch", "WAL fsync policy: batch (fsync before ack), interval, none")
		walSyncInterval = fs.Duration("wal-sync-interval", 50*time.Millisecond, "fsync period under -wal-sync=interval")
		walSegBytes     = fs.Int64("wal-segment-bytes", 8<<20, "WAL segment size before rotation")
		snapInterval    = fs.Duration("snapshot-interval", 10*time.Second, "per-shard snapshot period (truncates the WAL; negative disables)")

		decisionDir = fs.String("decision-log-dir", "", "directory for per-shard tuning decision logs (shard-<i>.jsonl)")
		dlqPath     = fs.String("dlq", "", "dead-letter log path (JSONL; empty disables the file, counters still advance)")
		lockfree    = fs.Bool("lockfree", false, "use the lock-free STM commit path")

		traceSample = fs.Float64("trace-sample", 0, "request-tracing sample rate in [0,1] (0 = off; export at /debug/server/trace)")
		traceRing   = fs.Int("trace-ring", 0, "completed-trace ring size (0 = default 4096)")

		schedOn       = fs.Bool("sched", false, "enable the per-shard contention-aware scheduler (conflict-domain lanes)")
		schedLanes    = fs.Int("sched-lanes", 0, "scheduler serial lanes per shard (0 = default 8)")
		schedShare    = fs.Float64("sched-promote-share", 0, "windowed abort share promoting a box into a conflict domain (0 = default 0.2)")
		schedInterval = fs.Duration("sched-interval", 0, "scheduler controller tick (0 = default 250ms)")

		shutdownTimeout = fs.Duration("shutdown-timeout", 5*time.Second, "graceful-shutdown drain bound")

		chaosShard = fs.Int("chaos-stall-shard", -1, "arm a chaos commit stall on this shard (-1 = off; exercises the breaker)")
		chaosAfter = fs.Uint64("chaos-stall-after", 100, "arrivals at the commit point before the stall fires")
		chaosTimes = fs.Uint64("chaos-stall-times", 1, "how many commits the armed stall wedges (0 = every one)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := server.Options{
		Addr:            *addr,
		HTTPAddr:        *httpAddr,
		Shards:          *shards,
		VNodes:          *vnodes,
		Keys:            *keys,
		QueueDepth:      *queueDepth,
		WorkersPerShard: *workers,
		RequestTimeout:  *reqTimeout,
		Breaker: server.BreakerOptions{
			FailureThreshold: *brkFailures,
			Cooldown:         *brkCooldown,
			HalfOpenProbes:   *brkProbes,
		},
		CoresPerShard:    *cores,
		DisableTuner:     *noTuner,
		TunerMaxWindow:   *maxWindow,
		Retune:           *retune,
		Seed:             *seed,
		WALDir:           *walDir,
		WALSyncPolicy:    *walSync,
		WALSyncInterval:  *walSyncInterval,
		WALSegmentBytes:  *walSegBytes,
		SnapshotInterval: *snapInterval,
		DecisionLogDir:   *decisionDir,
		DLQPath:          *dlqPath,
		LockFreeCommit:   *lockfree,
		Trace: server.TraceOptions{
			SampleRate: *traceSample,
			MaxTraces:  *traceRing,
		},
		Sched: server.SchedOptions{
			Enabled:      *schedOn,
			Lanes:        *schedLanes,
			PromoteShare: *schedShare,
			Interval:     *schedInterval,
		},
	}
	var injectors []*chaos.Injector
	if *chaosShard >= 0 {
		target := *chaosShard
		opts.Injector = func(shard int) *chaos.Injector {
			if shard != target {
				return nil
			}
			inj := chaos.New(chaos.Options{Rules: []chaos.Rule{{
				Name:    "stall-commit",
				Point:   chaos.PointCommit,
				Action:  chaos.ActStall,
				Trigger: chaos.Trigger{After: *chaosAfter, Times: *chaosTimes},
			}}})
			injectors = append(injectors, inj)
			return inj
		}
	}

	s, err := server.New(opts)
	if err != nil {
		return err
	}
	if err := s.Start(); err != nil {
		return err
	}
	if *walDir != "" {
		for _, row := range s.Status().ShardTable {
			if row.WAL == nil || row.WAL.Recovery == nil {
				continue
			}
			r := row.WAL.Recovery
			fmt.Printf("autopn-server: shard %d recovered in %.1fms (snapshot lsn %d, %d records replayed, %d keys restored, epoch %d, clean=%v, warm-start=%v)\n",
				row.ID, r.DurationMS, r.SnapshotLSN, r.ReplayRecords, r.KeysRestored, r.Epoch, r.CleanShutdown, r.WarmStart)
		}
	}
	fmt.Printf("autopn-server: serving on %s", s.Addr())
	if h := s.HTTPAddr(); h != "" {
		fmt.Printf(", introspection on http://%s/status", h)
	}
	fmt.Printf(" (%d shards, %d keys)\n", *shards, *keys)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()

	fmt.Println("autopn-server: shutting down...")
	// Release any armed chaos stalls so wedged workers can drain.
	for _, inj := range injectors {
		inj.Close()
	}
	rep := s.Shutdown(*shutdownTimeout)
	fmt.Printf("autopn-server: shutdown drained=%v abandoned=%d shed-at-shutdown=%d\n",
		rep.Drained, rep.Abandoned, rep.ShedAtShutdown)
	if !rep.Drained {
		return fmt.Errorf("drain incomplete: %d requests abandoned", rep.Abandoned)
	}
	return nil
}
