// Command autopn-explore exhaustively measures a workload model over the
// full (t, c) configuration space — the paper's §VII-B trace-collection
// protocol — and either prints the surface or saves the trace as JSON for
// later replay by the optimizers.
//
// Usage:
//
//	autopn-explore -workload tpcc-med -runs 10 -out tpcc-med.trace.json
//	autopn-explore -workload array-90 -print
//	autopn-explore -list
package main

import (
	"flag"
	"fmt"
	"os"

	"autopn/internal/experiment"
	"autopn/internal/space"
	"autopn/internal/stats"
	"autopn/internal/surface"
	"autopn/internal/trace"
)

func main() {
	var (
		name  = flag.String("workload", "tpcc-med", "workload name (see -list)")
		runs  = flag.Int("runs", 10, "samples per configuration")
		seed  = flag.Uint64("seed", 1, "random seed")
		out   = flag.String("out", "", "write the JSON trace to this file")
		print = flag.Bool("print", false, "print the mean throughput surface")
		list  = flag.Bool("list", false, "list available workloads")
	)
	flag.Parse()

	if *list {
		for _, w := range surface.AllWorkloads() {
			sp := space.New(w.Cores)
			opt, best := w.Optimum(sp)
			fmt.Printf("%-14s cores=%d optimum=%v (%.1f commits/s)\n", w.Name, w.Cores, opt, best)
		}
		return
	}

	var w *surface.Workload
	for _, cand := range surface.AllWorkloads() {
		if cand.Name == *name {
			w = cand
			break
		}
	}
	if w == nil {
		fmt.Fprintf(os.Stderr, "unknown workload %q (try -list)\n", *name)
		os.Exit(2)
	}

	sp := space.New(w.Cores)
	if *print {
		experiment.RenderFig1(os.Stdout, experiment.Fig1(w))
	}
	if *out != "" {
		tr := trace.Collect(w, sp, *runs, stats.NewRNG(*seed))
		if err := tr.SaveFile(*out); err != nil {
			fmt.Fprintf(os.Stderr, "save: %v\n", err)
			os.Exit(1)
		}
		optCfg, optV := tr.Optimum()
		fmt.Printf("collected %d configs x %d runs for %s -> %s (optimum %v = %.1f)\n",
			sp.Size(), *runs, w.Name, *out, optCfg, optV)
	}
	if !*print && *out == "" {
		fmt.Fprintln(os.Stderr, "nothing to do: pass -print and/or -out")
		os.Exit(2)
	}
}
