# autopn build & reproduction targets.

GO ?= go

.PHONY: all build test race race-all bench bench-stm repro figures clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) vet ./...
	$(GO) test ./...

# Short mode skips the slow live-timing and full-grid tests.
test-short:
	$(GO) test -short ./...

# Race-detector pass over the concurrency core (the STM and its actuator),
# including the snapshot-registry stress tests.
race:
	$(GO) test -race ./internal/stm/... ./internal/pnpool/...

race-all:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# STM hot-path microbenchmarks (compare against BENCH_stm.json).
bench-stm:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/stm/

# The single acceptance test for the paper's headline claims.
repro:
	$(GO) test -run TestReproductionGate -v .

# Regenerate every figure/table of the paper at full repetitions.
figures:
	$(GO) run ./cmd/autopn-bench -experiment all -reps 10

clean:
	$(GO) clean ./...
