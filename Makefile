# autopn build & reproduction targets.

GO ?= go

# Fuzzing/benchmark budgets; CI overrides these to keep the smoke jobs
# bounded, local runs can crank them up.
FUZZTIME ?= 30s
BENCHTIME ?= 100x
CONTENDED_BENCHTIME ?= 10000x
# bench-allocs needs enough iterations to amortize pool warm-up (the first
# few commits miss the body free list by design), and a fixed count so
# allocs/op is deterministic run to run.
ALLOC_BENCHTIME ?= 20000x

# Fault-injection soak seed; every CHAOS_SEED value yields one fixed,
# byte-identical fault schedule (see docs/ROBUSTNESS.md).
CHAOS_SEED ?= 1

# Per-run load-generation budget for the server load smoke; CI keeps it
# short, local runs can stretch it for steadier numbers.
LOADGEN_DURATION ?= 4s
# Where the load smoke drops its reports, decision logs and DLQ (CI
# uploads this directory as the server-e2e artifact).
SERVER_SMOKE_ARTIFACTS ?= server-smoke-artifacts
# Where the kill-and-recover smoke drops its ledger, audit report, WAL
# directory and per-run server logs (the recovery-e2e artifact).
RECOVERY_SMOKE_ARTIFACTS ?= recovery-smoke-artifacts
# Where the contention smoke drops the sched-off/sched-on loadgen reports,
# status snapshots and decision logs (the contention-smoke artifact).
CONTENTION_SMOKE_ARTIFACTS ?= contention-smoke-artifacts

.PHONY: all build test test-short race race-all bench bench-stm \
	bench-compare bench-allocs bench-contended bench-smoke trace-smoke \
	fuzz-smoke chaos server-smoke recovery-smoke contention-smoke lint ci repro figures clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) vet ./...
	$(GO) test ./...

# Short mode skips the slow live-timing and full-grid tests.
test-short:
	$(GO) test -short ./...

# Race-detector pass over the concurrency core (the STM with its tracer
# and actuator, plus the observability layer scraped concurrently),
# including the snapshot-registry stress and tracer enable/disable tests.
# GOMAXPROCS=4 even on single-core runners: the flat-combining commit
# (combiner election, queue hand-off, spin-then-park wake-up) only
# interleaves interestingly with several Ps.
race:
	GOMAXPROCS=4 $(GO) test -race ./internal/stm/... ./internal/pnpool/... ./internal/obs/... \
		./internal/sched/... ./internal/server/... ./internal/wal/...

race-all:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# STM hot-path microbenchmarks (compare against BENCH_stm.json).
bench-stm:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/stm/

# Run the hot-path benchmarks and diff them against BENCH_stm.json's
# "after" numbers, failing on >15% ns/op regressions (the tracing-off
# overhead guardrail). The contended benchmarks are excluded here: their
# run-to-run noise on shared runners is far above 15%, so they get their
# own target (bench-contended) with a generous threshold.
bench-compare:
	$(GO) test -benchmem -run '^$$' \
		-bench '^(BenchmarkBeginCommitReadOnly|BenchmarkSmallWriteTx|BenchmarkSmallWriteTxSched|BenchmarkNestedFanout)$$' \
		./internal/stm/ | \
		$(GO) run ./cmd/bench-compare -baseline BENCH_stm.json -threshold 15

# Hard allocation gate on the write-path benchmark family. The enormous
# ns/op threshold neutralizes timing noise (shared runners vary wildly);
# the only way this target fails is an allocs/op increase over
# BENCH_stm.json's "after" column (-strict-allocs). This is the guardrail
# that keeps the pooled zero-alloc write path honest: timing regressions
# are judged by bench-compare, allocation regressions by this target —
# exactly, since allocs/op at a fixed iteration count is deterministic.
bench-allocs:
	$(GO) test -benchmem -run '^$$' -benchtime=$(ALLOC_BENCHTIME) \
		-bench '^(BenchmarkBeginCommitReadOnly|BenchmarkSmallWriteTx|BenchmarkSmallWriteTxSched|BenchmarkNestedFanout)$$' \
		./internal/stm/ | \
		$(GO) run ./cmd/bench-compare -baseline BENCH_stm.json -threshold 10000 -strict-allocs

# Contended commit-path benchmarks at -cpu 1,4 (the flat-combining group
# commit's target workload), diffed against the exact -cpu entries in
# BENCH_stm.json. Advisory only — contended rows on shared or
# oversubscribed runners routinely vary 2x, so the diff is printed for
# trend reading (and to exercise the -cpu matching) but never fails the
# target; bench-contended.txt is the artifact to read.
bench-contended:
	$(GO) test -bench '^BenchmarkContendedCommit$$' -benchmem -cpu 1,4 \
		-benchtime=$(CONTENDED_BENCHTIME) -run '^$$' ./internal/stm/ | \
		tee bench-contended.txt | \
		{ $(GO) run ./cmd/bench-compare -baseline BENCH_stm.json -threshold 100 || true; }

# Produce a sample trace_event dump from a short fully-traced live run
# (CI uploads stm-trace.json as an artifact; load it in ui.perfetto.dev).
trace-smoke:
	$(GO) run ./cmd/autopn-live -workload array -writes 0.5 -cores 4 \
		-duration 3s -max-window 100ms -trace-sample 1 -trace-out stm-trace.json

# Trend-only benchmark smoke for CI: a fixed, tiny iteration budget so the
# job is fast; the output is uploaded as an artifact, never gated on. The
# contended benchmarks run at -cpu 1,4 so the artifact tracks the group
# commit's scaling trend alongside the uncontended hot paths.
bench-smoke:
	$(GO) test -bench . -benchmem -benchtime=$(BENCHTIME) -run '^$$' ./internal/stm/ | tee bench-smoke.txt
	$(GO) test -bench '^BenchmarkContendedCommit$$' -benchmem -cpu 1,4 \
		-benchtime=$(BENCHTIME) -run '^$$' ./internal/stm/ | tee bench-contended.txt

# Trace-loader fuzz smoke (the corpus-backed FuzzLoad target).
fuzz-smoke:
	$(GO) test -fuzz=FuzzLoad -fuzztime=$(FUZZTIME) -run '^$$' ./internal/trace

# Fault-injection soak under the race detector: the injector's own unit
# tests, the STM chaos suite (forced aborts, stalls and the seeded soak on
# both commit paths), and the end-to-end tuner self-protection test.
# Deterministic per CHAOS_SEED; set CHAOS_LOG=<path> to persist the
# self-protection decision trail as JSONL.
chaos:
	GOMAXPROCS=4 CHAOS_SEED=$(CHAOS_SEED) $(GO) test -race -count=1 -run '^TestChaos' \
		./internal/chaos/ ./internal/stm/ .

# End-to-end server load smoke: start the sharded server in-process,
# calibrate the host's sustainable rate, then drive 1x and 2x sustainable
# open-loop load and assert the admission-control contract (shedding
# engages with typed ERR overload replies, goodput holds within 20% of
# the 1x run, accepted p99 stays bounded, >= 2 shards log independent
# tuning decisions). Reports, per-shard decision logs and the DLQ land in
# $(SERVER_SMOKE_ARTIFACTS).
server-smoke:
	SERVER_SMOKE=1 LOADGEN_DURATION=$(LOADGEN_DURATION) \
		SERVER_SMOKE_ARTIFACTS=$(abspath $(SERVER_SMOKE_ARTIFACTS)) \
		$(GO) test -run '^TestServerLoadSmoke$$' -count=1 -v ./internal/server/

# Kill-and-recover gate: build the server binary, drive verified load
# against it, SIGKILL it mid-run, restart on the same WAL directory and
# assert zero acked-write loss (ledger audit), bounded recovery time,
# tuner warm-start from the per-shard checkpoints (>= 2 shards resume
# their pre-crash (t,c) with a RECOVERY decision event) and that the
# steady-state WAL cost under interval fsync stays >= 0.85x of the
# no-WAL baseline. Ledger, audit report, WAL dir, per-run server logs
# and the recovery status snapshot land in $(RECOVERY_SMOKE_ARTIFACTS).
recovery-smoke:
	RECOVERY_SMOKE=1 LOADGEN_DURATION=$(LOADGEN_DURATION) \
		RECOVERY_SMOKE_ARTIFACTS=$(abspath $(RECOVERY_SMOKE_ARTIFACTS)) \
		$(GO) test -run '^TestRecoveryKillAndRecover$$' -count=1 -v ./internal/server/

# Contention-scheduler goodput gate: drive the deep retry-storm hot-set
# scenario (whole-key-space MADDs, oversized worker pool) against two
# identically configured single-shard servers, scheduler off and on, and
# assert scheduler-on goodput >= 1.25x scheduler-off, that hot boxes were
# promoted into lanes, and that the promotion decisions persisted to the
# JSONL decision log. Reports, status snapshots and decision logs land in
# $(CONTENTION_SMOKE_ARTIFACTS). See docs/SCHEDULER.md.
contention-smoke:
	CONTENTION_SMOKE=1 LOADGEN_DURATION=$(LOADGEN_DURATION) \
		CONTENTION_SMOKE_ARTIFACTS=$(abspath $(CONTENTION_SMOKE_ARTIFACTS)) \
		$(GO) test -run '^TestContentionSmoke$$' -count=1 -v ./internal/server/

# Static analysis beyond go vet. Uses golangci-lint (see .golangci.yml)
# when installed; CI always runs it.
lint:
	@if command -v golangci-lint >/dev/null 2>&1; then \
		golangci-lint run; \
	else \
		echo "golangci-lint not installed; running go vet only"; \
		$(GO) vet ./...; \
	fi

# Everything the CI pipeline runs, in one target, so local runs and the
# pipeline stay in lockstep (the fuzz/bench budgets match ci.yml).
ci: build test-short race chaos fuzz-smoke bench-smoke bench-allocs server-smoke recovery-smoke contention-smoke lint

# The single acceptance test for the paper's headline claims.
repro:
	$(GO) test -run TestReproductionGate -v .

# Regenerate every figure/table of the paper at full repetitions.
figures:
	$(GO) run ./cmd/autopn-bench -experiment all -reps 10

clean:
	$(GO) clean ./...
