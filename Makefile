# autopn build & reproduction targets.

GO ?= go

.PHONY: all build test race bench repro figures clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

# Short mode skips the slow live-timing and full-grid tests.
test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# The single acceptance test for the paper's headline claims.
repro:
	$(GO) test -run TestReproductionGate -v .

# Regenerate every figure/table of the paper at full repetitions.
figures:
	$(GO) run ./cmd/autopn-bench -experiment all -reps 10

clean:
	$(GO) clean ./...
