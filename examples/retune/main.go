// Retune demonstrates the dynamic-workload extension (§V of the paper):
// AutoPN converges on a read-only Array workload, a CUSUM change detector
// then watches throughput, the workload shifts to write-heavy mid-run, and
// the tuner automatically re-optimizes.
//
//	go run ./examples/retune [-cores 4] [-shift 6s] [-duration 20s]
package main

import (
	"context"
	"flag"
	"fmt"
	"runtime"
	"time"

	"autopn"
	"autopn/internal/stm"
	"autopn/internal/workload"
	"autopn/internal/workload/array"
)

func main() {
	cores := flag.Int("cores", runtime.NumCPU(), "core budget")
	shift := flag.Duration("shift", 6*time.Second, "when to shift the workload")
	duration := flag.Duration("duration", 20*time.Second, "total run duration")
	flag.Parse()
	if *cores < 2 {
		*cores = 2
	}

	s := stm.New(stm.Options{})
	b := array.New(256, 0) // start read-only
	tuner := autopn.NewTuner(s, autopn.Options{
		Cores:     *cores,
		ReTune:    true,
		MaxWindow: 200 * time.Millisecond,
	})
	d := &workload.Driver{
		STM:        s,
		W:          b,
		Threads:    *cores,
		NestedHint: func() int { return tuner.Current().C },
	}
	d.Start(1)
	defer d.Stop()

	go func() {
		time.Sleep(*shift)
		fmt.Printf("[%v] workload shift: write fraction 0%% -> 95%%\n", shift)
		b.SetWritePct(0.95)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	fmt.Printf("tuning %s on %d cores with change detection...\n", b.Name(), *cores)
	res := tuner.Run(ctx)

	fmt.Printf("final configuration: %v\n", res.Best)
	fmt.Printf("re-tunes triggered by the CUSUM detector: %d\n", res.Retunes)
	fmt.Printf("total: %d measurement windows, %d explorations, %v\n",
		res.Windows, res.Explorations, res.Elapsed.Round(time.Millisecond))
}
