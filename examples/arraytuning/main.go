// Arraytuning runs the paper's Array micro-benchmark live on the real
// PN-STM across its four write-ratio variants (none / 0.01% / 50% / 90%,
// §VII-A) and tunes each with AutoPN, showing how the chosen (t, c) shifts
// from top-level parallelism toward intra-transaction parallelism as
// contention grows.
//
//	go run ./examples/arraytuning [-cores 8] [-per 5s]
package main

import (
	"context"
	"flag"
	"fmt"
	"runtime"
	"time"

	"autopn"
	"autopn/internal/stm"
	"autopn/internal/workload"
	"autopn/internal/workload/array"
)

func main() {
	cores := flag.Int("cores", runtime.NumCPU(), "core budget")
	per := flag.Duration("per", 5*time.Second, "tuning budget per variant")
	flag.Parse()
	if *cores < 2 {
		*cores = 2
	}

	for _, writePct := range []float64{0, 0.0001, 0.5, 0.9} {
		s := stm.New(stm.Options{})
		b := array.New(512, writePct)
		tuner := autopn.NewTuner(s, autopn.Options{
			Cores:     *cores,
			MaxWindow: 300 * time.Millisecond,
			Seed:      7,
		})
		d := &workload.Driver{
			STM:        s,
			W:          b,
			Threads:    *cores,
			NestedHint: func() int { return tuner.Current().C },
		}
		d.Start(42)

		ctx, cancel := context.WithTimeout(context.Background(), *per)
		res := tuner.Run(ctx)
		cancel()
		d.Stop()

		snap := s.Stats.Snapshot()
		abortPct := 0.0
		if snap.TopCommits+snap.TopAborts > 0 {
			abortPct = 100 * float64(snap.TopAborts) / float64(snap.TopCommits+snap.TopAborts)
		}
		fmt.Printf("%-12s -> best %v  (%.0f commits/s, %d explorations, abort rate %.1f%%)\n",
			b.Name(), res.Best, res.BestThroughput, res.Explorations, abortPct)
	}
}
