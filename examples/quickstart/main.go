// Quickstart: build a tiny transactional application on the PN-STM, attach
// the AutoPN tuner, and let it pick the parallelism degree online.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"autopn"
	"autopn/pnstm"
)

func main() {
	// 1. Create an STM and some transactional state: a bank of accounts.
	s := pnstm.New(pnstm.Options{})
	accounts := make([]*pnstm.VBox[int], 64)
	for i := range accounts {
		accounts[i] = pnstm.NewVBox(100)
	}

	// 2. Attach the tuner. It gates transaction admission transparently
	// and will search the (t, c) space while the application runs.
	cores := runtime.NumCPU()
	if cores < 2 {
		cores = 2
	}
	tuner := autopn.NewTuner(s, autopn.Options{
		Cores:     cores,
		MaxWindow: 500 * time.Millisecond,
	})

	// 3. Run the application: worker goroutines transferring money, each
	// transfer auditing its neighborhood with nested parallel scans.
	stop := make(chan struct{})
	for w := 0; w < cores; w++ {
		go func(seed int) {
			i := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				from, to := i%len(accounts), (i*7+1)%len(accounts)
				i++
				if from == to {
					continue
				}
				nested := tuner.Current().C // the paper's introspection API
				_ = s.Atomic(func(tx *pnstm.Tx) error {
					// Audit both halves of the bank in parallel children.
					if nested >= 2 {
						if err := tx.Parallel(
							func(c *pnstm.Tx) error { return audit(c, accounts[:32]) },
							func(c *pnstm.Tx) error { return audit(c, accounts[32:]) },
						); err != nil {
							return err
						}
					} else if err := audit(tx, accounts); err != nil {
						return err
					}
					accounts[from].Put(tx, accounts[from].Get(tx)-1)
					accounts[to].Put(tx, accounts[to].Get(tx)+1)
					return nil
				})
			}
		}(w * 13)
	}

	// 4. Tune.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res := tuner.Run(ctx)
	close(stop)

	fmt.Printf("tuned to %v after exploring %d of %d configurations (%v)\n",
		res.Best, res.Explorations, tuner.SpaceSize(), res.Elapsed.Round(time.Millisecond))
	fmt.Printf("throughput at best: %.0f commits/s\n", res.BestThroughput)

	// 5. The invariant held throughout: no money created or destroyed.
	total, _ := pnstm.AtomicResult(s, func(tx *pnstm.Tx) (int, error) {
		sum := 0
		for _, a := range accounts {
			sum += a.Get(tx)
		}
		return sum, nil
	})
	fmt.Printf("total balance: %d (expected %d)\n", total, len(accounts)*100)
}

// audit sums a slice of accounts inside a transaction (a read-heavy task
// worth parallelizing with nested transactions).
func audit(tx *pnstm.Tx, accounts []*pnstm.VBox[int]) error {
	sum := 0
	for _, a := range accounts {
		sum += a.Get(tx)
	}
	_ = sum
	return nil
}
