// Comparison replays one workload's offline trace into AutoPN and all five
// baseline optimizers (§VII-B protocol) and prints each strategy's
// trajectory: which configurations it explored and how far from optimum it
// ended.
//
//	go run ./examples/comparison [-workload tpcc-med] [-seed 3]
package main

import (
	"flag"
	"fmt"
	"os"

	"autopn/internal/core"
	"autopn/internal/search"
	"autopn/internal/space"
	"autopn/internal/stats"
	"autopn/internal/surface"
	"autopn/internal/trace"
)

func main() {
	name := flag.String("workload", "tpcc-med", "workload name")
	seed := flag.Uint64("seed", 3, "seed")
	flag.Parse()

	var w *surface.Workload
	for _, cand := range surface.AllWorkloads() {
		if cand.Name == *name {
			w = cand
		}
	}
	if w == nil {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *name)
		os.Exit(2)
	}

	sp := space.New(w.Cores)
	master := stats.NewRNG(*seed)
	tr := trace.Collect(w, sp, 10, master.Split())
	optCfg, optV := tr.Optimum()
	fmt.Printf("workload %s: %d configurations, optimum %v = %.1f commits/s\n\n",
		w.Name, sp.Size(), optCfg, optV)

	strategies := []struct {
		name string
		mk   func(rng *stats.RNG) search.Optimizer
	}{
		{"random", func(r *stats.RNG) search.Optimizer { return search.NewRandom(sp, r, 5, 0.10) }},
		{"grid", func(r *stats.RNG) search.Optimizer { return search.NewGrid(sp, 5, 0.10) }},
		{"hill-climbing", func(r *stats.RNG) search.Optimizer { return search.NewHillClimb(sp, r) }},
		{"annealing", func(r *stats.RNG) search.Optimizer { return search.NewAnnealing(sp, r) }},
		{"genetic", func(r *stats.RNG) search.Optimizer { return search.NewGenetic(sp, r) }},
		{"autopn", func(r *stats.RNG) search.Optimizer { return core.New(sp, r, core.Options{}) }},
	}

	for _, s := range strategies {
		rng := master.Split()
		opt := s.mk(rng)
		ev := trace.NewEvaluator(tr, rng.Split())
		explored := []space.Config{}
		seen := map[space.Config]float64{}
		for rounds := 0; rounds < 2000; rounds++ {
			cfg, done := opt.Next()
			if done {
				break
			}
			kpi, ok := seen[cfg]
			if !ok {
				kpi = ev.Evaluate(cfg)
				seen[cfg] = kpi
				explored = append(explored, cfg)
			}
			opt.Observe(cfg, kpi)
		}
		best, _ := opt.Best()
		fmt.Printf("%-14s explored %3d configs, settled on %-8v (%.1f%% from optimum)\n",
			s.name, len(explored), best, tr.DFO(best)*100)
		fmt.Printf("               path: %v\n", summarize(explored))
	}
}

// summarize prints the first and last few explored configurations.
func summarize(cfgs []space.Config) string {
	if len(cfgs) <= 10 {
		return fmt.Sprint(cfgs)
	}
	return fmt.Sprintf("%v ... %v", cfgs[:5], cfgs[len(cfgs)-5:])
}
