// Tpcc runs the TPC-C port live on the PN-STM with AutoPN attached,
// prints the tuning outcome, and verifies the database's accounting
// invariants afterwards — the end-to-end scenario of the paper's Fig. 1a.
//
//	go run ./examples/tpcc [-level med] [-cores 8] [-duration 10s]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"autopn"
	"autopn/internal/stm"
	"autopn/internal/workload"
	"autopn/internal/workload/tpcc"
)

func main() {
	level := flag.String("level", "med", "contention level (low|med|high)")
	cores := flag.Int("cores", runtime.NumCPU(), "core budget")
	duration := flag.Duration("duration", 10*time.Second, "run duration")
	flag.Parse()
	if *cores < 2 {
		*cores = 2
	}

	s := stm.New(stm.Options{})
	db := tpcc.New(*level, s)
	tuner := autopn.NewTuner(s, autopn.Options{
		Cores:     *cores,
		MaxWindow: 400 * time.Millisecond,
	})
	d := &workload.Driver{
		STM:        s,
		W:          db,
		Threads:    *cores,
		NestedHint: func() int { return tuner.Current().C },
	}
	d.Start(99)

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	res := tuner.Run(ctx)
	d.Stop()

	fmt.Printf("tpcc-%s tuned to %v: %.0f commits/s after %d explorations in %v\n",
		*level, res.Best, res.BestThroughput, res.Explorations, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("orders placed: %d\n", db.Orders())

	if err := db.CheckInvariants(s); err != nil {
		log.Fatalf("INVARIANT VIOLATION: %v", err)
	}
	fmt.Println("accounting invariants hold (order sequences, YTD balances)")
	snap := s.Stats.Snapshot()
	fmt.Printf("stm: %d commits, %d aborts, %d nested commits, %d nested aborts\n",
		snap.TopCommits, snap.TopAborts, snap.NestedCommits, snap.NestedAborts)
}
