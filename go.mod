module autopn

go 1.24
