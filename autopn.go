// Package autopn is an online self-tuner for the parallelism degree of
// parallel-nesting transactional memory, reproducing "Online Tuning of
// Parallelism Degree in Parallel Nesting Transactional Memory" (Zeng,
// Romano, Barreto, Rodrigues, Haridi — IPDPS 2018).
//
// A PN-TM application exposes two parallelism knobs: how many top-level
// transactions run concurrently (t) and how many nested child transactions
// each transaction tree may run concurrently (c). The tuner searches the
// constrained space {(t,c) : t*c <= cores} online — no offline training —
// by combining a biased boundary sampling, Sequential Model-Based
// Optimization over a bagged ensemble of M5 model trees with an Expected
// Improvement acquisition function, and a final hill-climbing refinement;
// throughput feedback comes from an adaptive monitor that ends each
// measurement window when the throughput estimate's coefficient of
// variation stabilizes, bounded by an adaptive timeout derived from the
// sequential configuration's commit rate.
//
// Quickstart against the bundled PN-STM (package pnstm):
//
//	s := pnstm.New(pnstm.Options{})
//	tuner := autopn.NewTuner(s, autopn.Options{Cores: runtime.NumCPU()})
//	go app.Run(s) // application issues transactions on s
//	result := tuner.Run(ctx)
//	fmt.Println("tuned to", result.Best)
//
// The tuner is transparent to the application: it intercepts transaction
// admission through the STM's throttle hook and enforces the configuration
// under test with resizable semaphores, exactly as the paper's actuator
// does. Applications that want to adapt their own data partitioning can
// query the currently enforced configuration with Tuner.Current.
package autopn

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"autopn/internal/core"
	"autopn/internal/monitor"
	"autopn/internal/obs"
	"autopn/internal/pnpool"
	"autopn/internal/search"
	"autopn/internal/space"
	"autopn/internal/stats"
	"autopn/internal/stm"
)

// Config is one point of the tuning space: T concurrent top-level
// transactions, each allowed C concurrent nested children.
type Config struct {
	T int
	C int
}

// String renders the configuration as "(t,c)".
func (c Config) String() string { return fmt.Sprintf("(%d,%d)", c.T, c.C) }

// Strategy selects the optimization algorithm. AutoPN is the paper's
// contribution; the others are the baselines it compares against and are
// provided for experimentation.
type Strategy int

// Available strategies.
const (
	StrategyAutoPN Strategy = iota
	StrategyRandom
	StrategyGrid
	StrategyHillClimb
	StrategyAnnealing
	StrategyGenetic
)

// Options configures a Tuner. The zero value is completed with the paper's
// defaults.
type Options struct {
	// Cores is the machine size n bounding the space (t*c <= n).
	// Required (>= 1).
	Cores int
	// Strategy picks the optimizer (default StrategyAutoPN).
	Strategy Strategy
	// Seed makes the tuner's stochastic choices reproducible (default 1).
	Seed uint64

	// EIThreshold is AutoPN's SMBO stopping threshold (default 0.10).
	EIThreshold float64
	// InitialSamples is the biased initial sample count, 3-9 (default 9).
	InitialSamples int
	// DisableHillClimb skips the final refinement phase.
	DisableHillClimb bool

	// CVThreshold ends a measurement window once the throughput
	// estimate's coefficient of variation drops below it (default 0.10).
	CVThreshold float64
	// MaxWindow bounds any single measurement window (default 30s).
	MaxWindow time.Duration

	// ReTune enables the CUSUM change detector: after convergence the
	// tuner keeps watching throughput and restarts optimization when the
	// workload shifts (§V "Dynamic workloads" / future work).
	ReTune bool

	// WarmStart, if non-nil and valid (Best.T and Best.C >= 1), resumes
	// the tuner from a prior process's checkpoint instead of running a
	// cold optimization session: the checkpointed last-known-good
	// configuration is applied immediately, the quarantine set is
	// reseeded, and a KindRecovery decision is recorded in place of the
	// initial-sampling trail. With ReTune the tuner then goes straight to
	// watching for workload change; without it Run returns once the
	// configuration is applied. ContTune's observation (PAPERS.md) is the
	// design argument: conservatively reusing prior tuning knowledge after
	// a disruption beats re-exploring from scratch.
	WarmStart *Checkpoint

	// DryRun makes the tuner measure and model without ever applying a
	// configuration change (used by the §VII-E overhead experiment).
	DryRun bool

	// WatchdogFactor arms the monitor's window watchdog with a budget of
	// WatchdogFactor times the adaptive gap timeout 1/T(1,1): windows that
	// defeat the policy's own deadlines (trickling or jittering
	// configurations) are force-ended and treated as starved. The derived
	// budget is floored at 100ms so that fast workloads, whose adaptive gap
	// is far below the monitor's deadline-polling granularity, cannot have
	// healthy windows force-ended; when the budget would not fire before
	// MaxWindow the watchdog disarms (the policy's own deadline governs).
	// 0 selects the default factor (32); negative disables the watchdog.
	WatchdogFactor float64
	// WatchdogMinBudget floors the watchdog budget, and also arms the
	// watchdog before T(1,1) has been measured (with zero minimum the
	// watchdog stays disarmed until the sequential configuration's
	// throughput anchors the gap timeout).
	WatchdogMinBudget time.Duration
	// QuarantineAfter bans a configuration from the candidate space after
	// this many consecutive starved windows (zero-commit gap timeouts or
	// watchdog trips). 0 selects the default (2); negative disables
	// quarantining. The sequential pivot (1,1) is never banned.
	QuarantineAfter int

	// OnMeasurement, if non-nil, is invoked after every measurement window
	// with the configuration measured and the window's outcome — the
	// observability hook the CLI uses to print the tuning trajectory.
	OnMeasurement func(cfg Config, m Measurement)

	// Recorder, if non-nil, receives the tuner's structured decision trail
	// (see internal/obs): every measurement window, every optimizer
	// suggestion with its Expected Improvement, phase transitions, applied
	// configurations and CUSUM change-points. Wire an obs.JSONL to persist
	// it, an obs.Ring to serve it over HTTP, or an obs.Multi for both.
	Recorder obs.Recorder
	// Metrics, if non-nil, is the registry the tuner instruments: the
	// STM's transaction counters, the monitor's window summaries, and the
	// tuner's own gauges/counters are registered on it (see
	// docs/OBSERVABILITY.md for the catalogue). Serve it with obs.NewHandler.
	Metrics *obs.Registry
}

// Measurement summarizes one monitoring window (see internal/monitor).
type Measurement struct {
	// Throughput in committed top-level transactions per second.
	Throughput float64
	// Commits observed during the window.
	Commits int
	// Elapsed window duration.
	Elapsed time.Duration
	// TimedOut reports deadline-triggered completion (starving or
	// never-stabilizing configuration).
	TimedOut bool
	// CV is the final coefficient of variation of the window's running
	// throughput estimates (0 when fewer than two commits were seen).
	CV float64
	// Aborts is the number of STM aborts (top-level + nested) observed
	// during the window — the contention cost of the configuration under
	// measurement.
	Aborts uint64
	// WatchdogTripped reports that the window was force-ended by the
	// monitor's watchdog (see Options.WatchdogFactor).
	WatchdogTripped bool
}

// Result summarizes a completed tuning run.
type Result struct {
	// Best is the configuration the tuner converged to (and applied).
	Best Config
	// BestThroughput is the measured throughput of Best (commits/sec).
	BestThroughput float64
	// Explorations is the number of distinct configurations measured.
	Explorations int
	// Windows is the number of measurement windows used.
	Windows int
	// Elapsed is the wall-clock duration of the tuning session.
	Elapsed time.Duration
	// Retunes counts CUSUM-triggered re-optimizations (ReTune mode).
	Retunes int
}

// Tuner drives the self-tuning process for one STM instance.
type Tuner struct {
	opts Options
	sp   *space.Space
	pool *pnpool.Pool
	live *monitor.Live
	stm  *stm.STM

	rec   obs.Recorder
	phase atomic.Value // string; see Phase

	// Self-protection state (see Options.WatchdogFactor/QuarantineAfter).
	quar    *space.Quarantine // nil when quarantining is disabled
	t11gap  atomic.Uint64     // adaptive gap 1/T(1,1) in ns; 0 = unknown
	wdTrips atomic.Uint64     // watchdog trips this process

	lastGoodMu  sync.Mutex
	lastGood    space.Config // most recent config with a healthy window
	lastGoodKPI float64      // its measured throughput (commits/sec)
	hasLastGood bool

	// Tuner-level metrics (nil without Options.Metrics).
	mExplorations *obs.Counter
	mRetunes      *obs.Counter
	mSessions     *obs.Counter
}

// NewTuner attaches a tuner to s: it installs the actuator as the STM's
// throttle and subscribes the KPI monitor to commit events. The
// application's transactions must start after NewTuner (the throttle and
// hook must not be swapped while transactions run).
func NewTuner(s *stm.STM, opts Options) *Tuner {
	if opts.Cores < 1 {
		panic("autopn: Options.Cores must be >= 1")
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.EIThreshold <= 0 {
		opts.EIThreshold = 0.10
	}
	if opts.CVThreshold <= 0 {
		opts.CVThreshold = 0.10
	}
	if opts.MaxWindow <= 0 {
		opts.MaxWindow = 30 * time.Second
	}
	if opts.WatchdogFactor == 0 {
		opts.WatchdogFactor = 32
	}
	if opts.QuarantineAfter == 0 {
		opts.QuarantineAfter = 2
	}
	t := &Tuner{
		opts: opts,
		sp:   space.New(opts.Cores),
		pool: pnpool.New(space.Config{T: 1, C: 1}),
		live: monitor.NewLive(monitor.NewWallClock()),
		rec:  opts.Recorder,
	}
	if t.rec == nil {
		t.rec = obs.Nop{}
	}
	t.phase.Store("idle")
	t.stm = s
	if opts.QuarantineAfter > 0 {
		t.quar = space.NewQuarantine(opts.QuarantineAfter, space.Config{T: 1, C: 1})
	}
	if opts.WatchdogFactor > 0 {
		t.live.SetWatchdog(&monitor.Watchdog{
			Budget: t.watchdogBudget,
			OnTrip: func(time.Duration) { t.wdTrips.Add(1) },
		})
	}
	if !opts.DryRun {
		s.SetThrottle(t.pool)
	}
	s.SetCommitHook(t.live.OnCommit)
	t.live.SetAbortSource(func() uint64 {
		return s.Stats.TopAborts() + s.Stats.NestedAborts()
	})
	if reg := opts.Metrics; reg != nil {
		s.Stats.Collect(reg)
		t.live.Instrument(reg)
		if tr := s.Tracer(); tr != nil {
			tr.Collect(reg)
		}
		reg.GaugeFunc("autopn_tuner_current_t", func() float64 { return float64(t.pool.Current().T) })
		reg.GaugeFunc("autopn_tuner_current_c", func() float64 { return float64(t.pool.Current().C) })
		reg.GaugeFunc("autopn_tuner_space_size", func() float64 { return float64(t.sp.Size()) })
		t.mExplorations = reg.Counter("autopn_tuner_explorations_total")
		t.mRetunes = reg.Counter("autopn_tuner_retunes_total")
		t.mSessions = reg.Counter("autopn_tuner_sessions_total")
		reg.GaugeFunc("autopn_quarantined_configs", func() float64 {
			if t.quar == nil {
				return 0
			}
			return float64(t.quar.Len())
		})
	}
	return t
}

// watchdogBudgetFloor bounds the derived watchdog budget from below. On
// fast workloads the adaptive gap 1/T(1,1) is microseconds — far below the
// monitor's deadline-polling granularity — and a factor×gap budget at that
// scale would force-end perfectly healthy windows at the first poll tick.
// No pathological window is shorter than this.
const watchdogBudgetFloor = 100 * time.Millisecond

// watchdogBudget derives the per-window watchdog budget: WatchdogFactor
// times the adaptive gap 1/T(1,1), floored by watchdogBudgetFloor and
// WatchdogMinBudget. Before T(1,1) is known the configured minimum alone
// applies (zero = disarmed). The watchdog's job is to end a pathological
// window BEFORE the policy's MaxWindow would, and attribute starvation; a
// budget that cannot fire first is useless and — at the boundary — races
// MaxWindow, mislabeling healthy windows that legitimately run that long.
// So when the budget would not undercut MaxWindow the watchdog disarms and
// the policy's own deadline governs.
func (t *Tuner) watchdogBudget() time.Duration {
	gap := time.Duration(t.t11gap.Load())
	b := t.opts.WatchdogMinBudget
	if gap > 0 {
		b = time.Duration(t.opts.WatchdogFactor * float64(gap))
		if b < watchdogBudgetFloor {
			b = watchdogBudgetFloor
		}
		if b < t.opts.WatchdogMinBudget {
			b = t.opts.WatchdogMinBudget
		}
	}
	if t.opts.MaxWindow > 0 && b >= t.opts.MaxWindow {
		return 0
	}
	return b
}

// Phase returns the tuner's current activity as a human-readable string:
// "idle" before Run, the optimizer's phase while tuning (for AutoPN:
// initial-sampling, smbo, hill-climbing; for the baselines their strategy
// name), "converged" after a session applies its best configuration, and
// "watching" while the ReTune change detector is armed. Safe for
// concurrent use — this is what the /status endpoint reports.
func (t *Tuner) Phase() string { return t.phase.Load().(string) }

// Current returns the configuration currently enforced by the actuator —
// the paper's ad-hoc introspection API for applications that adapt their
// data partitioning to the tuned parallelism degree.
func (t *Tuner) Current() Config {
	cur := t.pool.Current()
	return Config{T: cur.T, C: cur.C}
}

// SpaceSize returns the number of admissible configurations.
func (t *Tuner) SpaceSize() int { return t.sp.Size() }

// newOptimizer builds the configured strategy.
func (t *Tuner) newOptimizer(rng *stats.RNG) search.Optimizer {
	switch t.opts.Strategy {
	case StrategyRandom:
		return search.NewRandom(t.sp, rng, 5, 0.10)
	case StrategyGrid:
		return search.NewGrid(t.sp, 5, 0.10)
	case StrategyHillClimb:
		return search.NewHillClimb(t.sp, rng)
	case StrategyAnnealing:
		return search.NewAnnealing(t.sp, rng)
	case StrategyGenetic:
		return search.NewGenetic(t.sp, rng)
	default:
		return core.New(t.sp, rng, core.Options{
			InitialSamples:   t.opts.InitialSamples,
			Stop:             core.NewEIStop(t.opts.EIThreshold),
			DisableHillClimb: t.opts.DisableHillClimb,
			Recorder:         t.rec,
			Quarantine:       t.quar,
		})
	}
}

// Checkpoint is the tuner continuity state a host persists across process
// lifetimes (the serving layer writes one per shard next to its WAL): the
// last-known-good configuration with its measured throughput, the phase it
// was captured in, and the quarantine set. Restoring it via
// Options.WarmStart skips the cold exploration a restart would otherwise
// force.
type Checkpoint struct {
	// Best is the last-known-good configuration (falling back to the
	// currently enforced one when no healthy window has completed yet).
	Best Config `json:"best"`
	// BestThroughput is Best's measured throughput in commits/sec (0 when
	// unmeasured).
	BestThroughput float64 `json:"best_throughput,omitempty"`
	// Phase is the tuner phase at capture time.
	Phase string `json:"phase,omitempty"`
	// Quarantined is the banned-configuration set at capture time.
	Quarantined []Config `json:"quarantined,omitempty"`
}

// Checkpoint snapshots the tuner's continuity state for persistence. Safe
// for concurrent use with a running tuner.
func (t *Tuner) Checkpoint() Checkpoint {
	ck := Checkpoint{Phase: t.Phase()}
	t.lastGoodMu.Lock()
	if t.hasLastGood {
		ck.Best = Config{T: t.lastGood.T, C: t.lastGood.C}
		ck.BestThroughput = t.lastGoodKPI
	}
	t.lastGoodMu.Unlock()
	if ck.Best.T == 0 {
		ck.Best = t.Current()
	}
	if t.quar != nil {
		for _, cfg := range t.quar.List() {
			ck.Quarantined = append(ck.Quarantined, Config{T: cfg.T, C: cfg.C})
		}
	}
	return ck
}

// restoreCheckpoint applies Options.WarmStart, reporting whether a valid
// checkpoint was restored. The restored configuration is applied to the
// actuator, becomes the fallback target, the quarantine set is reseeded,
// and a KindRecovery decision is recorded — the recovered process's
// decision log starts with "recovery", not "initial-sampling".
func (t *Tuner) restoreCheckpoint() bool {
	ck := t.opts.WarmStart
	if ck == nil || ck.Best.T < 1 || ck.Best.C < 1 || ck.Best.T*ck.Best.C > t.opts.Cores {
		return false
	}
	if t.quar != nil {
		for _, cfg := range ck.Quarantined {
			t.quar.Ban(space.Config{T: cfg.T, C: cfg.C})
		}
	}
	best := space.Config{T: ck.Best.T, C: ck.Best.C}
	t.lastGoodMu.Lock()
	t.lastGood, t.hasLastGood = best, true
	t.lastGoodKPI = ck.BestThroughput
	t.lastGoodMu.Unlock()
	if !t.opts.DryRun {
		t.pool.Apply(best)
	}
	t.phase.Store("converged")
	t.rec.Record(obs.Decision{
		Kind: obs.KindRecovery, Phase: t.Phase(),
		T: ck.Best.T, C: ck.Best.C, Throughput: ck.BestThroughput,
		Note: fmt.Sprintf("warm start from checkpoint (was %s, %d quarantined)",
			ckPhase(ck.Phase), len(ck.Quarantined)),
	})
	return true
}

// ckPhase renders a checkpoint phase for the recovery note.
func ckPhase(p string) string {
	if p == "" {
		return "unknown phase"
	}
	return "phase " + p
}

// Run executes the tuning process to convergence, applies the best
// configuration found, and returns the result. With Options.ReTune it then
// keeps monitoring for workload changes and re-tunes on detection,
// returning only when ctx is cancelled. Without ReTune it returns as soon
// as the optimizer converges (or ctx is cancelled).
//
// With a valid Options.WarmStart checkpoint the first optimization session
// is skipped entirely: the checkpointed configuration is applied and the
// tuner proceeds as if it had just converged (watching for change under
// ReTune, returning otherwise). The next CUSUM change point triggers a
// normal re-tuning session.
func (t *Tuner) Run(ctx context.Context) Result {
	start := time.Now()
	rng := stats.NewRNG(t.opts.Seed)
	var res Result
	warm := t.restoreCheckpoint()
	if warm {
		ck := t.opts.WarmStart
		res.Best, res.BestThroughput = ck.Best, ck.BestThroughput
		res.Elapsed = time.Since(start)
		if !t.opts.ReTune || ctx.Err() != nil {
			return res
		}
	}
	for {
		if !warm {
			r := t.tuneOnce(ctx, rng)
			res.Best, res.BestThroughput = r.Best, r.BestThroughput
			res.Explorations += r.Explorations
			res.Windows += r.Windows
			res.Elapsed = time.Since(start)
			if !t.opts.ReTune || ctx.Err() != nil {
				return res
			}
		}
		warm = false
		if !t.watchForChange(ctx) {
			res.Elapsed = time.Since(start)
			return res
		}
		res.Retunes++
	}
}

// tuneOnce runs one full optimization session.
func (t *Tuner) tuneOnce(ctx context.Context, rng *stats.RNG) Result {
	opt := t.newOptimizer(rng.Split())
	if t.mSessions != nil {
		t.mSessions.Inc()
	}
	var res Result
	t11 := 0.0
	seen := make(map[space.Config]bool)
	for ctx.Err() == nil {
		cfg, done := opt.Next()
		if done {
			break
		}
		t.phase.Store(t.optPhase(opt))
		if !t.opts.DryRun {
			t.pool.Apply(cfg)
			t.settle(ctx, cfg)
		}
		ll0 := t.stm.Stats.LivelockTrips()
		m := t.live.Measure(t.windowPolicy(t11))
		livelocks := t.stm.Stats.LivelockTrips() - ll0
		if (cfg == space.Config{T: 1, C: 1}) && t11 == 0 && m.Throughput > 0 {
			t11 = m.Throughput
			// Anchor the watchdog budget to the freshly measured adaptive gap.
			t.t11gap.Store(uint64(monitor.AdaptiveGapFromSequential(t11, 0)))
		}
		if t.opts.OnMeasurement != nil {
			t.opts.OnMeasurement(Config{T: cfg.T, C: cfg.C}, Measurement{
				Throughput:      m.Throughput,
				Commits:         m.Commits,
				Elapsed:         m.Elapsed,
				TimedOut:        m.TimedOut,
				CV:              m.CV,
				Aborts:          m.Aborts,
				WatchdogTripped: m.WatchdogTripped,
			})
		}
		t.rec.Record(obs.Decision{
			Kind: obs.KindMeasurement, Phase: t.Phase(),
			T: cfg.T, C: cfg.C,
			Throughput: m.Throughput, CV: m.CV, Commits: m.Commits,
			WindowMS: float64(m.Elapsed) / float64(time.Millisecond),
			TimedOut: m.TimedOut, Aborts: m.Aborts,
			Watchdog: m.WatchdogTripped, Livelocks: livelocks,
		})
		// Self-protection: a starved window (watchdog trip, or a gap
		// timeout with zero commits) strikes the configuration and falls
		// back to the last known-good one; a healthy window clears strikes
		// and becomes the new known-good. This runs before the optimizer
		// sees the KPI so a ban is already effective for the next Next().
		// A starved window's throughput is untrustworthy (the window never
		// stabilized — a watchdog-tripped trickle can even look fast), so
		// the optimizer is fed zero for it: a pathological configuration
		// must never become the incumbent best.
		kpi := m.Throughput
		if m.WatchdogTripped || (m.TimedOut && m.Commits == 0) {
			t.handleStarved(cfg, m)
			kpi = 0
		} else {
			t.noteHealthy(cfg, m)
		}
		if !seen[cfg] {
			seen[cfg] = true
			res.Explorations++
			if t.mExplorations != nil {
				t.mExplorations.Inc()
			}
		}
		res.Windows++
		if ap, ok := opt.(*core.AutoPN); ok {
			ap.ObserveMeasured(cfg, kpi, m.CV)
		} else {
			opt.Observe(cfg, kpi)
		}
	}
	best, kpi := opt.Best()
	if !t.opts.DryRun {
		t.pool.Apply(best)
	}
	t.phase.Store("converged")
	t.rec.Record(obs.Decision{
		Kind: obs.KindApply, Phase: t.Phase(),
		T: best.T, C: best.C, Throughput: kpi,
		Note: "best of session applied",
	})
	res.Best = Config{T: best.T, C: best.C}
	res.BestThroughput = kpi
	return res
}

// handleStarved processes a starved measurement window: strike (and
// possibly ban) the configuration, then revert the actuator to the last
// known-good configuration so the system does not keep running a
// pathological (t,c) while the optimizer deliberates.
func (t *Tuner) handleStarved(cfg space.Config, m monitor.Measurement) {
	if t.quar != nil {
		if t.quar.ReportStarved(cfg) {
			t.rec.Record(obs.Decision{
				Kind: obs.KindQuarantine, Phase: t.Phase(),
				T: cfg.T, C: cfg.C, Watchdog: m.WatchdogTripped,
				Note: fmt.Sprintf("banned after %d starved windows", t.quar.Strikes(cfg)),
			})
		}
	}
	t.fallback(cfg, m.WatchdogTripped)
}

// noteHealthy clears cfg's quarantine strikes and, when the window actually
// committed work, remembers cfg as the fallback target.
func (t *Tuner) noteHealthy(cfg space.Config, m monitor.Measurement) {
	if t.quar != nil {
		t.quar.ReportHealthy(cfg)
	}
	if m.Commits > 0 {
		t.lastGoodMu.Lock()
		t.lastGood, t.hasLastGood = cfg, true
		t.lastGoodKPI = m.Throughput
		t.lastGoodMu.Unlock()
	}
}

// fallback reverts the actuator to the last known-good configuration.
func (t *Tuner) fallback(from space.Config, watchdog bool) {
	if t.opts.DryRun {
		return
	}
	t.lastGoodMu.Lock()
	good, ok := t.lastGood, t.hasLastGood
	t.lastGoodMu.Unlock()
	if !ok || good == from {
		return
	}
	t.pool.Apply(good)
	t.rec.Record(obs.Decision{
		Kind: obs.KindFallback, Phase: t.Phase(),
		T: good.T, C: good.C, Watchdog: watchdog,
		Note: fmt.Sprintf("reverted from starving %s to last known-good %s", from, good),
	})
}

// Protection summarizes the tuner's self-protection state (see
// Options.WatchdogFactor and Options.QuarantineAfter); the /status endpoint
// of autopn-live serves it.
type Protection struct {
	// WatchdogTrips counts measurement windows force-ended by the watchdog.
	WatchdogTrips uint64 `json:"watchdog_trips"`
	// Quarantined lists the banned configurations in canonical order.
	Quarantined []Config `json:"quarantined,omitempty"`
	// LastGood is the most recent configuration with a healthy committing
	// window — the fallback target (nil before the first healthy window).
	LastGood *Config `json:"last_good,omitempty"`
}

// Protection returns a snapshot of the self-protection state. Safe for
// concurrent use.
func (t *Tuner) Protection() Protection {
	p := Protection{WatchdogTrips: t.wdTrips.Load()}
	if t.quar != nil {
		for _, cfg := range t.quar.List() {
			p.Quarantined = append(p.Quarantined, Config{T: cfg.T, C: cfg.C})
		}
	}
	t.lastGoodMu.Lock()
	if t.hasLastGood {
		p.LastGood = &Config{T: t.lastGood.T, C: t.lastGood.C}
	}
	t.lastGoodMu.Unlock()
	return p
}

// optPhase names what the optimizer is doing for Phase()/the decision log.
func (t *Tuner) optPhase(opt search.Optimizer) string {
	if ap, ok := opt.(*core.AutoPN); ok {
		return ap.Phase()
	}
	return opt.Name()
}

// settle waits until a shrinking reconfiguration has drained: transactions
// admitted under the previous (larger) configuration release their
// semaphore slots as they finish, and measuring before that would
// attribute their commits to the new configuration. Growth needs no wait.
// The wait is bounded by the monitor's MaxWindow so a stalled transaction
// cannot wedge the tuner.
func (t *Tuner) settle(ctx context.Context, cfg space.Config) {
	deadline := time.Now().Add(t.opts.MaxWindow)
	for t.pool.TopHeld() > cfg.T && ctx.Err() == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
}

// windowPolicy builds the adaptive CV policy for one measurement window.
func (t *Tuner) windowPolicy(t11 float64) monitor.Policy {
	p := monitor.NewCVPolicy()
	p.CVThreshold = t.opts.CVThreshold
	p.MaxWindow = t.opts.MaxWindow
	p.GapTimeout = monitor.AdaptiveGapFromSequential(t11, 0)
	return p
}

// watchForChange monitors throughput under the converged configuration and
// returns true when the CUSUM detector signals a workload change (false on
// ctx cancellation).
func (t *Tuner) watchForChange(ctx context.Context) bool {
	det := stats.NewCUSUM(5, 1, 20)
	t.phase.Store("watching")
	for ctx.Err() == nil {
		m := t.live.Measure(t.windowPolicy(0))
		if det.Observe(m.Throughput) {
			if t.mRetunes != nil {
				t.mRetunes.Inc()
			}
			t.rec.Record(obs.Decision{
				Kind: obs.KindChangePoint, Phase: t.Phase(),
				Throughput: m.Throughput,
				Note:       "CUSUM throughput shift: re-tuning",
			})
			return true
		}
	}
	return false
}
