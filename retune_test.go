package autopn_test

import (
	"context"
	"testing"
	"time"

	"autopn"
	"autopn/internal/workload"
	"autopn/internal/workload/array"
	"autopn/pnstm"
)

// TestReTuneDetectsWorkloadShift runs the tuner in ReTune mode against a
// live Array workload, then drastically changes the workload's write
// fraction: the CUSUM detector must notice the throughput shift and
// trigger at least one re-optimization (§V "Dynamic workloads").
func TestReTuneDetectsWorkloadShift(t *testing.T) {
	if testing.Short() {
		t.Skip("live timing test")
	}
	s := pnstm.New(pnstm.Options{})
	b := array.New(256, 0) // start read-only: fast, conflict-free
	tuner := autopn.NewTuner(s, autopn.Options{
		Cores:       2,
		Seed:        17,
		ReTune:      true,
		CVThreshold: 0.25,
		MaxWindow:   60 * time.Millisecond,
	})
	d := &workload.Driver{
		STM:        s,
		W:          b,
		Threads:    2,
		NestedHint: func() int { return tuner.Current().C },
	}
	d.Start(1)
	defer d.Stop()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Shift the workload after the initial tuning has had time to converge
	// and the change watcher has calibrated: writing 95% of the array slows
	// every transaction dramatically.
	go func() {
		time.Sleep(6 * time.Second)
		b.SetWritePct(0.95)
	}()

	done := make(chan autopn.Result, 1)
	go func() { done <- tuner.Run(ctx) }()

	// Give the session time to converge, calibrate, shift and re-tune,
	// then stop it and inspect the result.
	time.Sleep(20 * time.Second)
	cancel()
	res := <-done

	if res.Retunes == 0 {
		t.Fatalf("workload shift not detected: %+v", res)
	}
	t.Logf("re-tuned %d time(s); final %v after %d windows", res.Retunes, res.Best, res.Windows)
}
