package autopn_test

import (
	"testing"

	"autopn/internal/experiment"
	"autopn/internal/space"
	"autopn/internal/surface"
)

// TestReproductionGate is the single acceptance test for the paper's
// headline claims: it runs a reduced version of every experiment and
// checks each figure's *ordering/shape* result in one place. Individual
// experiments have deeper dedicated tests; this gate is the one to run
// first when validating a change to the optimizer, monitor or surfaces.
func TestReproductionGate(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full (reduced) experiment grid")
	}

	t.Run("Fig1_TPCC_surface", func(t *testing.T) {
		res := experiment.Fig1(surface.TPCC("med"))
		if res.Best.Cfg != (space.Config{T: 20, C: 2}) {
			t.Errorf("TPC-C optimum %v, paper reports (20,2)", res.Best.Cfg)
		}
		if ratio := res.Best.Throughput / res.Seq; ratio < 4 || ratio > 20 {
			t.Errorf("best/(1,1) = %.1fx, paper reports ~9x", ratio)
		}
	})

	t.Run("StaticConfigInsufficient", func(t *testing.T) {
		res := experiment.StaticBaseline(surface.AllWorkloads())
		if res.MeanDFO < 0.08 {
			t.Errorf("best static mean DFO %.1f%%; paper reports 21.8%%", res.MeanDFO*100)
		}
		if res.WorstSlowdown < 2 {
			t.Errorf("worst static slowdown %.1fx; paper reports 3.22x", res.WorstSlowdown)
		}
	})

	t.Run("Fig5_AutoPNWins", func(t *testing.T) {
		cfg := experiment.DefaultFig5Config()
		cfg.Reps = 3
		results := experiment.Fig5(cfg)
		byName := map[string]experiment.StrategyResult{}
		for _, r := range results {
			byName[r.Name] = r
		}
		ap, ga := byName["autopn"], byName["genetic"]
		if ap.MeanFinalDFO > 0.05 {
			t.Errorf("autopn mean final DFO %.1f%%; paper reports <1%%", ap.MeanFinalDFO*100)
		}
		if ap.MeanExplorations*1.5 > ga.MeanExplorations {
			t.Errorf("autopn explorations %.1f vs GA %.1f; paper reports ~3x fewer",
				ap.MeanExplorations, ga.MeanExplorations)
		}
		for _, name := range []string{"random", "grid", "hill-climbing", "simulated-annealing"} {
			if byName[name].MeanFinalDFO < 2*ap.MeanFinalDFO {
				t.Errorf("%s unexpectedly competitive: %.1f%% vs autopn %.1f%%",
					name, byName[name].MeanFinalDFO*100, ap.MeanFinalDFO*100)
			}
		}
		// Hill-climb refinement helps (Fig. 5's autopn vs autopn-noHC gap).
		if noHC := byName["autopn-noHC"]; ap.MeanFinalDFO > noHC.MeanFinalDFO {
			t.Errorf("refinement hurt: %.1f%% with HC vs %.1f%% without",
				ap.MeanFinalDFO*100, noHC.MeanFinalDFO*100)
		}
	})

	t.Run("Fig6_Biased9AndEIStop", func(t *testing.T) {
		cfg := experiment.DefaultFig6Config()
		cfg.Reps = 3
		byName := map[string]experiment.VariantResult{}
		for _, r := range experiment.Fig6Sampling(cfg) {
			byName[r.Name] = r
		}
		if byName["biased-9"].MeanFinalDFO >= byName["biased-7"].MeanFinalDFO {
			t.Error("no 7->9 biased-sampling boost (the paper's major jump)")
		}
		if byName["biased-9"].MeanFinalDFO >= byName["uniform-9"].MeanFinalDFO {
			t.Error("biased-9 not better than uniform-9")
		}
		stops := map[string]experiment.VariantResult{}
		for _, r := range experiment.Fig6Stop(cfg) {
			stops[r.Name] = r
		}
		if stops["EI<10%"].MeanExplorations >= stops["stubborn"].MeanExplorations {
			t.Error("EI stopping not cheaper than stubborn exploration")
		}
	})

	t.Run("Fig7_MonitoringTradeoffs", func(t *testing.T) {
		pts := experiment.Fig7c(3, 0x6A7E)
		sums := map[string]float64{}
		n := map[string]int{}
		for _, p := range pts {
			sums[p.Policy] += p.MeanDFO
			n[p.Policy]++
		}
		adaptive := sums["adaptive"] / float64(n["adaptive"])
		wnoc := sums["WNOC30"] / float64(n["WNOC30"])
		if wnoc < 2*adaptive {
			t.Errorf("WNOC30 (%.1f%%) not clearly worse than adaptive (%.1f%%)",
				wnoc*100, adaptive*100)
		}
	})

	t.Run("Headline_SpeedAndAccuracy", func(t *testing.T) {
		cfg := experiment.DefaultSpeedConfig()
		cfg.Reps = 2
		var apTime, apDFO, baseTime, baseDFO float64
		nBase := 0
		for _, r := range experiment.Speed(cfg) {
			if r.Name == "autopn" {
				apTime, apDFO = r.MeanTimeToStability.Seconds(), r.MeanFinalDFO
			} else {
				baseTime += r.MeanTimeToStability.Seconds()
				baseDFO += r.MeanFinalDFO
				nBase++
			}
		}
		if speedup := baseTime / float64(nBase) / apTime; speedup < 2 {
			t.Errorf("stability speedup %.1fx; paper reports 9.8x", speedup)
		}
		if gain := baseDFO / float64(nBase) / apDFO; gain < 3 {
			t.Errorf("accuracy gain %.1fx; paper reports up to 32x", gain)
		}
	})
}
