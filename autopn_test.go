package autopn_test

import (
	"context"
	"testing"
	"time"

	"autopn"
	"autopn/internal/workload"
	"autopn/internal/workload/array"
	"autopn/pnstm"
)

// startArray launches a live Array workload on a fresh STM with a tuner
// attached, returning the tuner, the driver and a stop function.
func startArray(t *testing.T, opts autopn.Options, writePct float64) (*autopn.Tuner, func()) {
	t.Helper()
	s := pnstm.New(pnstm.Options{})
	tuner := autopn.NewTuner(s, opts)
	b := array.New(64, writePct)
	d := &workload.Driver{STM: s, W: b, Threads: opts.Cores}
	d.Start(123)
	return tuner, d.Stop
}

func TestTunerConvergesLive(t *testing.T) {
	opts := autopn.Options{
		Cores:       4,
		Seed:        9,
		CVThreshold: 0.25,
		MaxWindow:   80 * time.Millisecond,
	}
	tuner, stop := startArray(t, opts, 0.1)
	defer stop()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res := tuner.Run(ctx)
	if ctx.Err() != nil {
		t.Fatal("tuner did not converge within the deadline")
	}
	if res.Best.T < 1 || res.Best.C < 1 || res.Best.T*res.Best.C > opts.Cores {
		t.Fatalf("invalid best config %v", res.Best)
	}
	if res.Explorations < 5 {
		t.Fatalf("explored only %d configs", res.Explorations)
	}
	if got := tuner.Current(); got != res.Best {
		t.Fatalf("Current() = %v, want applied best %v", got, res.Best)
	}
	if res.BestThroughput <= 0 {
		t.Fatalf("non-positive best throughput %v", res.BestThroughput)
	}
	t.Logf("converged to %v (%.0f commits/s) after %d explorations, %d windows in %v",
		res.Best, res.BestThroughput, res.Explorations, res.Windows, res.Elapsed)
}

func TestTunerSpaceSize(t *testing.T) {
	s := pnstm.New(pnstm.Options{})
	tuner := autopn.NewTuner(s, autopn.Options{Cores: 48})
	if got := tuner.SpaceSize(); got != 198 {
		t.Fatalf("SpaceSize for 48 cores = %d, want 198 (the paper's count)", got)
	}
}

func TestTunerDryRunNeverReconfigures(t *testing.T) {
	opts := autopn.Options{
		Cores:       4,
		Seed:        5,
		DryRun:      true,
		CVThreshold: 0.3,
		MaxWindow:   50 * time.Millisecond,
	}
	tuner, stop := startArray(t, opts, 0)
	defer stop()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	tuner.Run(ctx)
	// In dry-run mode the actuator stays at its initial configuration.
	if got := tuner.Current(); got != (autopn.Config{T: 1, C: 1}) {
		t.Fatalf("dry run applied %v", got)
	}
}

func TestTunerBaselineStrategiesRun(t *testing.T) {
	for _, strat := range []autopn.Strategy{
		autopn.StrategyRandom, autopn.StrategyHillClimb, autopn.StrategyAnnealing,
	} {
		opts := autopn.Options{
			Cores:       2,
			Seed:        3,
			Strategy:    strat,
			CVThreshold: 0.3,
			MaxWindow:   40 * time.Millisecond,
		}
		tuner, stop := startArray(t, opts, 0.05)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		res := tuner.Run(ctx)
		cancel()
		stop()
		if res.Explorations == 0 {
			t.Errorf("strategy %v explored nothing", strat)
		}
	}
}
