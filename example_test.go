package autopn_test

import (
	"context"
	"fmt"
	"time"

	"autopn"
	"autopn/pnstm"
)

// Attach a tuner to a running transactional application and let it pick
// the parallelism degree. (The example uses a tiny core budget and loose
// monitor settings so it completes quickly and deterministically enough
// for documentation purposes.)
func ExampleTuner() {
	s := pnstm.New(pnstm.Options{})
	counter := pnstm.NewVBox(0)

	tuner := autopn.NewTuner(s, autopn.Options{
		Cores:       2,
		CVThreshold: 0.5,
		MaxWindow:   50 * time.Millisecond,
	})

	// The application: workers incrementing a counter through the STM.
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		go func() {
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = s.Atomic(func(tx *pnstm.Tx) error {
					counter.Put(tx, counter.Get(tx)+1)
					return nil
				})
			}
		}()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res := tuner.Run(ctx)
	close(stop)

	valid := res.Best.T >= 1 && res.Best.C >= 1 && res.Best.T*res.Best.C <= 2
	fmt.Println("found a valid configuration:", valid)
	fmt.Println("explored the whole space:", res.Explorations == tuner.SpaceSize())
	// Output:
	// found a valid configuration: true
	// explored the whole space: true
}
