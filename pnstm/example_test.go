package pnstm_test

import (
	"fmt"

	"autopn/pnstm"
)

// The fundamental operation: an atomic read-modify-write on versioned
// boxes.
func Example() {
	s := pnstm.New(pnstm.Options{})
	balance := pnstm.NewVBox(100)

	err := s.Atomic(func(tx *pnstm.Tx) error {
		balance.Put(tx, balance.Get(tx)-30)
		return nil
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(balance.Peek())
	// Output: 70
}

// Parallel nesting: a transaction forks child transactions that run
// concurrently, see the parent's uncommitted writes, and merge atomically.
func ExampleTx_Parallel() {
	s := pnstm.New(pnstm.Options{})
	left := pnstm.NewVBox(0)
	right := pnstm.NewVBox(0)
	total := pnstm.NewVBox(0)

	err := s.Atomic(func(tx *pnstm.Tx) error {
		total.Put(tx, 10) // visible to the children below
		if err := tx.Parallel(
			func(c *pnstm.Tx) error { left.Put(c, total.Get(c)+1); return nil },
			func(c *pnstm.Tx) error { right.Put(c, total.Get(c)+2); return nil },
		); err != nil {
			return err
		}
		// The parent sees both children's merged effects.
		total.Put(tx, left.Get(tx)+right.Get(tx))
		return nil
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(left.Peek(), right.Peek(), total.Peek())
	// Output: 11 12 23
}

// AtomicResult returns a value computed transactionally.
func ExampleAtomicResult() {
	s := pnstm.New(pnstm.Options{})
	a := pnstm.NewVBox(3)
	b := pnstm.NewVBox(4)

	sum, err := pnstm.AtomicResult(s, func(tx *pnstm.Tx) (int, error) {
		return a.Get(tx) + b.Get(tx), nil
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(sum)
	// Output: 7
}

// ParallelFor partitions an index range across nested children — the
// idiom for parallelizing a scan inside a transaction.
func ExampleTx_ParallelFor() {
	s := pnstm.New(pnstm.Options{})
	cells := make([]*pnstm.VBox[int], 8)
	for i := range cells {
		cells[i] = pnstm.NewVBox(i)
	}

	err := s.Atomic(func(tx *pnstm.Tx) error {
		return tx.ParallelFor(len(cells), 4, func(c *pnstm.Tx, i int) error {
			cells[i].Put(c, cells[i].Get(c)*10)
			return nil
		})
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(cells[0].Peek(), cells[7].Peek())
	// Output: 0 70
}
