package pnstm_test

import (
	"errors"
	"testing"

	"autopn/pnstm"
)

// The pnstm package is a facade; these tests pin its public surface.

func TestFacadeRoundtrip(t *testing.T) {
	s := pnstm.New(pnstm.Options{})
	box := pnstm.NewVBox("a")
	err := s.Atomic(func(tx *pnstm.Tx) error {
		box.Put(tx, box.Get(tx)+"b")
		return tx.Parallel(
			func(c *pnstm.Tx) error { box.Put(c, box.Get(c)+"c"); return nil },
		)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := box.Peek(); got != "abc" {
		t.Fatalf("Peek = %q", got)
	}
	snap := s.Stats.Snapshot()
	if snap.TopCommits != 1 || snap.NestedCommits != 1 {
		t.Fatalf("stats = %+v", snap)
	}
}

func TestFacadeAtomicResultAndErrors(t *testing.T) {
	s := pnstm.New(pnstm.Options{MaxRetries: 1})
	box := pnstm.NewVBox(10)
	v, err := pnstm.AtomicResult(s, func(tx *pnstm.Tx) (int, error) {
		return box.Get(tx) * 2, nil
	})
	if err != nil || v != 20 {
		t.Fatalf("AtomicResult = (%d, %v)", v, err)
	}
	if !errors.Is(pnstm.ErrTooManyRetries, pnstm.ErrTooManyRetries) {
		t.Fatal("error alias broken")
	}
}

func TestFacadeLockFreeOption(t *testing.T) {
	s := pnstm.New(pnstm.Options{LockFreeCommit: true})
	box := pnstm.NewVBox(0)
	for i := 0; i < 10; i++ {
		if err := s.Atomic(func(tx *pnstm.Tx) error {
			box.Put(tx, box.Get(tx)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if box.Peek() != 10 {
		t.Fatalf("Peek = %d", box.Peek())
	}
}
