package pnstm_test

import (
	"errors"
	"testing"

	"autopn/pnstm"
)

// The pnstm package is a facade; these tests pin its public surface.

func TestFacadeRoundtrip(t *testing.T) {
	s := pnstm.New(pnstm.Options{})
	box := pnstm.NewVBox("a")
	err := s.Atomic(func(tx *pnstm.Tx) error {
		box.Put(tx, box.Get(tx)+"b")
		return tx.Parallel(
			func(c *pnstm.Tx) error { box.Put(c, box.Get(c)+"c"); return nil },
		)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := box.Peek(); got != "abc" {
		t.Fatalf("Peek = %q", got)
	}
	snap := s.Stats.Snapshot()
	if snap.TopCommits != 1 || snap.NestedCommits != 1 {
		t.Fatalf("stats = %+v", snap)
	}
}

func TestFacadeAtomicResultAndErrors(t *testing.T) {
	s := pnstm.New(pnstm.Options{MaxRetries: 1})
	box := pnstm.NewVBox(10)
	v, err := pnstm.AtomicResult(s, func(tx *pnstm.Tx) (int, error) {
		return box.Get(tx) * 2, nil
	})
	if err != nil || v != 20 {
		t.Fatalf("AtomicResult = (%d, %v)", v, err)
	}
	if !errors.Is(pnstm.ErrTooManyRetries, pnstm.ErrTooManyRetries) {
		t.Fatal("error alias broken")
	}
}

func TestFacadeLockFreeOption(t *testing.T) {
	s := pnstm.New(pnstm.Options{LockFreeCommit: true})
	box := pnstm.NewVBox(0)
	for i := 0; i < 10; i++ {
		if err := s.Atomic(func(tx *pnstm.Tx) error {
			box.Put(tx, box.Get(tx)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if box.Peek() != 10 {
		t.Fatalf("Peek = %d", box.Peek())
	}
}

// TestFacadeTypedFastPath pins the word-inlined Set/Swap surface through
// the facade: word-typed boxes take the zero-boxing path, and the pool
// counters surface through the re-exported StatsSnapshot.
func TestFacadeTypedFastPath(t *testing.T) {
	s := pnstm.New(pnstm.Options{})
	counter := pnstm.NewVBox(int64(10))
	flag := pnstm.NewVBox(false)
	if err := s.Atomic(func(tx *pnstm.Tx) error {
		counter.Set(tx, counter.Get(tx)+1)
		if old := counter.Swap(tx, 100); old != 11 {
			t.Errorf("Swap returned %d, want 11", old)
		}
		flag.Set(tx, true)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := counter.Peek(); got != 100 {
		t.Fatalf("counter Peek = %d, want 100", got)
	}
	if !flag.Peek() {
		t.Fatal("flag Peek = false, want true")
	}
	// Churn versions so retirement (and eventually pool reuse) shows up in
	// the re-exported snapshot fields.
	for i := 0; i < 50; i++ {
		if err := s.Atomic(func(tx *pnstm.Tx) error {
			counter.Set(tx, counter.Get(tx)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Stats.Snapshot()
	if snap.BodyRetired == 0 {
		t.Errorf("BodyRetired = 0 after 50 single-box commits, want > 0")
	}
	if snap.BodyPoolHits == 0 {
		t.Errorf("BodyPoolHits = 0 after 50 single-box commits, want > 0")
	}
}
