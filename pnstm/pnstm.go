// Package pnstm is the public face of the repository's parallel-nesting
// software transactional memory. It re-exports the multi-version PN-STM
// implemented in internal/stm so that downstream users can build
// transactional applications against a stable import path:
//
//	s := pnstm.New(pnstm.Options{})
//	box := pnstm.NewVBox(0)
//	err := s.Atomic(func(tx *pnstm.Tx) error {
//	    box.Put(tx, box.Get(tx)+1)
//	    return tx.Parallel(
//	        func(c *pnstm.Tx) error { ...child transaction... },
//	        func(c *pnstm.Tx) error { ...runs concurrently...  },
//	    )
//	})
//
// See the package documentation of the aliased types for semantics: top-
// level transactions run against a multi-version snapshot and validate
// their read set at commit; nested transactions (Tx.Parallel) run
// concurrently within their parent, see its uncommitted writes, detect
// conflicts with committed siblings, and merge into the parent on commit
// (closed nesting: nothing is globally visible until the top-level commit).
package pnstm

import (
	"context"

	"autopn/internal/stm"
)

// STM is an isolated transactional memory universe. See stm.STM.
type STM = stm.STM

// Tx is a (top-level or nested) transaction handle. See stm.Tx.
type Tx = stm.Tx

// Options configures an STM instance. See stm.Options.
type Options = stm.Options

// Stats holds an STM's cumulative transaction counters. See stm.Stats.
type Stats = stm.Stats

// StatsSnapshot is a point-in-time copy of Stats.
type StatsSnapshot = stm.StatsSnapshot

// VBox is a typed versioned transactional memory location. See stm.VBox.
type VBox[T any] = stm.VBox[T]

// Throttle gates transaction admission; the autopn tuner installs its
// actuator through this interface. See stm.Throttle.
type Throttle = stm.Throttle

// TreeGate limits concurrent nested transactions within one transaction
// tree. See stm.TreeGate.
type TreeGate = stm.TreeGate

// RetryPolicy configures contention management of conflicted transactions:
// capped exponential backoff with jitter, a per-transaction attempt budget,
// and livelock detection. See stm.RetryPolicy.
type RetryPolicy = stm.RetryPolicy

// ErrTooManyRetries is returned by Atomic when the retry budget
// (Options.MaxRetries or RetryPolicy.MaxAttempts) is exceeded.
var ErrTooManyRetries = stm.ErrTooManyRetries

// New creates an STM with the given options.
func New(opts Options) *STM { return stm.New(opts) }

// NewVBox creates a box holding initial as its first committed value.
func NewVBox[T any](initial T) *VBox[T] { return stm.NewVBox(initial) }

// AtomicResult runs fn as a top-level transaction on s and returns its
// result.
func AtomicResult[T any](s *STM, fn func(tx *Tx) (T, error)) (T, error) {
	return stm.AtomicResult(s, fn)
}

// AtomicResultCtx runs fn as a top-level transaction with context-aware
// retries (see STM.AtomicCtx: cancellation is honored at retry boundaries
// and propagates into parallel-nested children) and returns its result.
func AtomicResultCtx[T any](ctx context.Context, s *STM, fn func(tx *Tx) (T, error)) (T, error) {
	return stm.AtomicResultCtx(ctx, s, fn)
}

// AtomicResultReadOnly runs fn as a read-only transaction (never retried,
// never conflicting; writes panic) and returns its result.
func AtomicResultReadOnly[T any](s *STM, fn func(tx *Tx) (T, error)) (T, error) {
	var out T
	err := s.AtomicReadOnly(func(tx *Tx) error {
		var err error
		out, err = fn(tx)
		return err
	})
	return out, err
}
